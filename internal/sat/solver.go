// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation, first
// unique implication point conflict analysis with clause minimization,
// VSIDS variable activities, phase saving, Luby restarts and activity-based
// learnt-clause database reduction.
//
// The solver backs the MeMin-style exact FSM minimizer and the SAT
// sweeping / combinational equivalence checking passes of this library.
package sat

import (
	"fmt"
	"sort"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// ErrResourceLimit reports that a hard resource cap installed with
// SetResourceLimit (total conflicts or live learnt-clause literals) was
// exceeded. It wraps pipeline.ErrBudgetExceeded so the cap reads as a
// budget failure everywhere the engine classifies errors. The search
// itself still returns Unknown — like a soft budget — and callers that
// need the reason read it back with ResourceErr.
var ErrResourceLimit = fmt.Errorf("sat: resource limit exceeded: %w", pipeline.ErrBudgetExceeded)

// Lit is a literal: variable index shifted left once, low bit set for a
// negated literal. Variables are numbered from 0.
type Lit int32

// MkLit builds a literal from a variable index and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits   []Lit
	act    float64
	learnt bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause
	watches [][]*clause // indexed by literal

	assign   []lbool // indexed by variable
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap
	phase    []bool  // saved phases
	seen     []bool  // scratch for analyze
	model    []lbool // assignment captured at the last Sat answer

	claInc float64

	ok           bool // false once UNSAT at level 0
	numConflicts int64
	budget       int64       // max conflicts per Solve; <=0 means unlimited
	interrupt    func() bool // polled during search; true aborts with Unknown

	// Hard resource caps (SetResourceLimit). Unlike budget, these are
	// lifetime caps meant to bound memory and CPU even across calls;
	// tripping one records limitErr and returns Unknown.
	hardConflicts  int64
	hardLearntLits int64
	learntLits     int64 // live literals across the learnt database
	limitErr       error // why the last Solve degraded to Unknown, or nil

	stats Stats

	// Observability hooks (nil when unobserved; all uses nil-safe).
	span          *obs.Span      // parent for per-call "sat.solve" spans
	mDecisions    *obs.Counter   // obs.MSATDecisions
	mPropagations *obs.Counter   // obs.MSATPropagations
	mRestarts     *obs.Counter   // obs.MSATRestarts
	mConflicts    *obs.Counter   // obs.MSATConflicts
	mLearned      *obs.Histogram // obs.MSATLearnedSize
	observed      bool
}

// Stats holds cumulative solver counters, accumulated across Solve calls.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
}

// Add accumulates b into a; the sweep engine uses it to aggregate the
// counters of its per-shard solvers.
func (a *Stats) Add(b Stats) {
	a.Conflicts += b.Conflicts
	a.Decisions += b.Decisions
	a.Propagations += b.Propagations
	a.Restarts += b.Restarts
	a.Learnt += b.Learnt
}

// Stats returns a snapshot of the solver's cumulative counters.
func (s *Solver) Stats() Stats { return s.stats }

// SetObserver attaches observability to the solver: each Solve call
// opens a "sat.solve" child span under span carrying the per-call stat
// deltas, and the sat.* counters / the learned-clause-size histogram of
// reg accumulate across calls. Either argument may be nil (the sweep
// engine passes metrics only, keeping traces small across its thousands
// of queries); nil+nil restores the zero-overhead unobserved state.
func (s *Solver) SetObserver(span *obs.Span, reg *obs.Registry) {
	s.span = span
	s.mDecisions = reg.Counter(obs.MSATDecisions)
	s.mPropagations = reg.Counter(obs.MSATPropagations)
	s.mRestarts = reg.Counter(obs.MSATRestarts)
	s.mConflicts = reg.Counter(obs.MSATConflicts)
	s.mLearned = reg.Histogram(obs.MSATLearnedSize)
	s.observed = span != nil || reg != nil
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.order.s = s
	return s
}

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// SetBudget limits the number of conflicts in each subsequent Solve call;
// n <= 0 removes the limit. A Solve that exhausts the budget returns
// Unknown.
func (s *Solver) SetBudget(n int64) { s.budget = n }

// SetResourceLimit installs hard caps: conflicts bounds the solver's
// lifetime conflict total (across Solve calls, unlike SetBudget's
// per-call allowance), and learntLits bounds the live literal count of
// the learnt-clause database, which dominates solver memory. Zero
// leaves a cap unset. A Solve that trips a cap backtracks to level 0
// and returns Unknown, with ResourceErr reporting an
// ErrResourceLimit-matching cause.
func (s *Solver) SetResourceLimit(conflicts, learntLits int64) {
	s.hardConflicts = conflicts
	s.hardLearntLits = learntLits
}

// ResourceErr explains the last Unknown caused by a hard resource cap
// or an injected fault; nil after any other outcome.
func (s *Solver) ResourceErr() error { return s.limitErr }

// SetInterrupt installs a callback polled during the search (at every
// conflict and periodically between decisions). When it returns true
// the current Solve call backtracks to level 0 and returns Unknown.
// Pass nil to remove the hook. The callback must be cheap and safe to
// call from the goroutine running Solve.
func (s *Solver) SetInterrupt(f func() bool) { s.interrupt = f }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false when
// the formula is already unsatisfiable at level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Sort, dedupe, detect tautology, drop false literals.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.stats.Propagations++
		falseLit := p.Not()
		ws := s.watches[falseLit]
		j := 0
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Make sure the false literal is lits[1].
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watch is true, clause is satisfied.
			if s.value(c.lits[0]) == lTrue {
				ws[j] = c
				j++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					found = true
					break
				}
			}
			if found {
				continue // clause removed from this watch list
			}
			// Clause is unit or conflicting.
			ws[j] = c
			j++
			if s.value(c.lits[0]) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falseLit] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[falseLit] = ws[:j]
	}
	return nil
}

// analyze performs 1UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) == s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal on the trail at the current level.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		confl = s.reason[v]
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals implied by the rest. The seen
	// flags of dropped literals must still be cleared afterwards.
	marked := append([]Lit(nil), learnt[1:]...)
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			out = append(out, q)
		}
	}
	learnt = out

	// Compute backtrack level = max level among non-asserting literals.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	for _, q := range marked {
		s.seen[q.Var()] = false
	}
	return learnt, bt
}

// redundant reports whether literal q of a learnt clause is implied by the
// remaining clause literals through its reason clause (local, one-level
// minimization).
func (s *Solver) redundant(q Lit) bool {
	r := s.reason[q.Var()]
	if r == nil {
		return false
	}
	for _, l := range r.lits {
		v := l.Var()
		if l != q.Not() && !s.seen[v] && s.level[v] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = !l.Neg()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// reduceDB removes the least active half of the learnt clauses (binary
// clauses and current reasons are kept).
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.learnts[i].act < s.learnts[j].act })
	locked := make(map[*clause]bool)
	for v := range s.reason {
		if s.reason[v] != nil {
			locked[s.reason[v]] = true
		}
	}
	keep := s.learnts[:0]
	removed := make(map[*clause]bool)
	for i, c := range s.learnts {
		if len(c.lits) <= 2 || locked[c] || i >= len(s.learnts)/2 {
			keep = append(keep, c)
		} else {
			removed[c] = true
			s.learntLits -= int64(len(c.lits))
		}
	}
	s.learnts = keep
	if len(removed) == 0 {
		return
	}
	for li := range s.watches {
		ws := s.watches[li]
		j := 0
		for _, c := range ws {
			if !removed[c] {
				ws[j] = c
				j++
			}
		}
		s.watches[li] = ws[:j]
	}
}

// luby computes the Luby restart sequence term i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment under the given assumptions.
// When an observer is attached (SetObserver), the call is wrapped in a
// "sat.solve" span and its stat deltas feed the sat.* metrics.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.limitErr = nil
	if err := fault.Point(fault.PointSATSolve); err != nil {
		// Error-mode injection degrades the call to Unknown — the same
		// shape as budget exhaustion — with the cause in ResourceErr.
		// (Panic mode unwinds out of Point to the recover boundaries.)
		s.limitErr = err
		return Unknown
	}
	if !s.observed {
		return s.search(assumptions)
	}
	sp := s.span.Child("sat.solve", "sat")
	before := s.stats
	st := s.search(assumptions)
	d := s.stats
	d.Conflicts -= before.Conflicts
	d.Decisions -= before.Decisions
	d.Propagations -= before.Propagations
	d.Restarts -= before.Restarts
	sp.SetStr("status", st.String())
	sp.SetInt("vars", int64(len(s.assign)))
	sp.SetInt("conflicts", d.Conflicts)
	sp.SetInt("decisions", d.Decisions)
	sp.SetInt("propagations", d.Propagations)
	sp.End()
	s.mConflicts.Add(d.Conflicts)
	s.mDecisions.Add(d.Decisions)
	s.mPropagations.Add(d.Propagations)
	s.mRestarts.Add(d.Restarts)
	return st
}

// search is the CDCL main loop behind Solve.
func (s *Solver) search(assumptions []Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}

	conflictsAtStart := s.numConflicts
	restart := int64(1)
	restartBudget := luby(restart) * 100
	conflictsSinceRestart := int64(0)
	maxLearnts := int64(len(s.clauses)/3 + 100)

	for {
		confl := s.propagate()
		if confl != nil {
			s.numConflicts++
			s.stats.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			if s.decisionLevel() <= len(assumptions) {
				// Conflict depends only on assumptions.
				s.cancelUntil(0)
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			s.mLearned.Observe(int64(len(learnt)))
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.claInc}
				s.learnts = append(s.learnts, c)
				s.learntLits += int64(len(learnt))
				s.stats.Learnt++
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			if s.budget > 0 && s.numConflicts-conflictsAtStart >= s.budget {
				s.cancelUntil(0)
				return Unknown
			}
			if s.hardConflicts > 0 && s.numConflicts >= s.hardConflicts {
				s.limitErr = fmt.Errorf("%w: %d conflicts", ErrResourceLimit, s.numConflicts)
				s.cancelUntil(0)
				return Unknown
			}
			if s.hardLearntLits > 0 && s.learntLits > s.hardLearntLits {
				s.limitErr = fmt.Errorf("%w: %d learnt literals", ErrResourceLimit, s.learntLits)
				s.cancelUntil(0)
				return Unknown
			}
			if s.interrupt != nil && s.interrupt() {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		if conflictsSinceRestart >= restartBudget {
			restart++
			restartBudget = luby(restart) * 100
			conflictsSinceRestart = 0
			s.stats.Restarts++
			s.cancelUntil(len(assumptions))
			continue
		}
		if int64(len(s.learnts)) >= maxLearnts {
			maxLearnts += maxLearnts / 10
			s.reduceDB()
		}

		// Decide.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // dummy level, keeps indexing aligned
			case lFalse:
				s.cancelUntil(0)
				return Unsat
			default:
				s.newDecisionLevel()
				s.uncheckedEnqueue(a, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			// All variables assigned: capture the model, then undo the
			// search so the solver can keep accepting clauses.
			s.model = append(s.model[:0], s.assign...)
			s.cancelUntil(0)
			return Sat
		}
		s.stats.Decisions++
		// Conflict-free instances never reach the per-conflict
		// interrupt check, so poll between decisions too.
		if s.interrupt != nil && s.stats.Decisions&0xff == 0 && s.interrupt() {
			s.cancelUntil(0)
			return Unknown
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// Value returns the value of variable v in the last satisfying assignment
// (true/false); it must only be called after Solve returned Sat.
func (s *Solver) Value(v int) bool { return s.model[v] == lTrue }

// ValueLit returns the truth value of a literal in the model.
func (s *Solver) ValueLit(l Lit) bool {
	if l.Neg() {
		return s.model[l.Var()] == lFalse
	}
	return s.model[l.Var()] == lTrue
}

// Model returns a copy of the last satisfying assignment.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	for v := range m {
		m[v] = s.model[v] == lTrue
	}
	return m
}

// varHeap is a max-heap on variable activity with lazy deletion support.
type varHeap struct {
	s     *Solver
	heap  []int
	index []int // position of variable in heap, -1 when absent
}

func (h *varHeap) less(a, b int) bool { return h.s.activity[a] > h.s.activity[b] }

func (h *varHeap) push(v int) {
	for len(h.index) <= v {
		h.index = append(h.index, -1)
	}
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.index[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.index[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if v < len(h.index) && h.index[v] >= 0 {
		h.up(h.index[v])
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < len(h.heap) && h.less(h.heap[l], h.heap[sm]) {
			sm = l
		}
		if r < len(h.heap) && h.less(h.heap[r], h.heap[sm]) {
			sm = r
		}
		if sm == i {
			return
		}
		h.swap(i, sm)
		i = sm
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = i
	h.index[h.heap[j]] = j
}
