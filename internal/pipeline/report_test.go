package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"circuitfold/internal/obs"
)

func sampleReport() *Report {
	return &Report{
		Pipeline: "functional",
		Total:    3 * time.Millisecond,
		Stages: []StageStats{
			{
				Name: StageSchedule, Start: 0, Duration: time.Millisecond,
				AndsIn: 100, AndsOut: 100, BDDNodes: 512, StatesIn: -1, StatesOut: -1,
			},
			{
				Name: StageMinimize, Start: time.Millisecond, Duration: 2 * time.Millisecond,
				AndsIn: -1, AndsOut: -1, BDDNodes: -1, StatesIn: 29, StatesOut: 14,
				SATConflicts: 7, Spans: 3, Err: "boom",
			},
		},
		Err: "boom",
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport().String()
	for _, want := range []string{
		"pipeline functional", "total=3ms", "err=boom",
		"schedule", "100>100", "512",
		"minimize", "29>14", "boom",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if got := (*Report)(nil).String(); got != "<nil report>" {
		t.Errorf("nil String() = %q", got)
	}
}

func TestReportWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []obs.Event `json:"traceEvents"`
		DisplayTimeUnit string      `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("got %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
	root := doc.TraceEvents[0]
	if root.Name != "functional" || root.Cat != "pipeline" || root.TS != 0 || root.Dur != 3000 {
		t.Fatalf("root event = %+v", root)
	}
	if root.Args["err"] != "boom" {
		t.Fatalf("root args = %v", root.Args)
	}
	sched := doc.TraceEvents[1]
	// JSON numbers decode as float64 in the any-typed Args.
	if sched.Args["bdd_nodes"] != float64(512) || sched.Args["ands_in"] != float64(100) {
		t.Fatalf("schedule args = %v", sched.Args)
	}
	if _, ok := sched.Args["states_in"]; ok {
		t.Fatalf("schedule must omit -1 fields: %v", sched.Args)
	}
	min := doc.TraceEvents[2]
	if min.TS != 1000 || min.Dur != 2000 || min.Args["spans"] != float64(3) || min.Args["err"] != "boom" {
		t.Fatalf("minimize event = %+v", min)
	}

	// A nil report still writes a loadable empty document.
	buf.Reset()
	if err := (*Report)(nil).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Fatalf("nil report trace: %s", buf.String())
	}
}

// TestExecuteObserved checks the span plumbing end to end: Execute emits
// a root and per-stage span, counts sub-stage spans into StageStats.Spans,
// and folds NoteBDDNodes peaks into StageStats.BDDNodes.
func TestExecuteObserved(t *testing.T) {
	sink := obs.NewTraceBuffer()
	reg := obs.NewRegistry()
	o := &obs.Observer{Tracer: obs.NewTracer(sink), Metrics: reg}
	run := NewRunObserved(context.Background(), Budget{}, o)

	rep, err := Execute(run, "test",
		Stage{Name: "a", Run: func(ss *StageStats) error {
			run.Span().Child("a.sub", "x").End()
			run.Span().Child("a.sub", "x").End()
			run.NoteBDDNodes(300)
			run.NoteBDDNodes(200)
			return nil
		}},
		Stage{Name: "b", Run: func(ss *StageStats) error {
			ss.BDDNodes = 77 // a stage's own value wins over the noted peak
			run.NoteBDDNodes(999)
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].Spans != 2 {
		t.Errorf("stage a Spans = %d, want 2", rep.Stages[0].Spans)
	}
	if rep.Stages[0].BDDNodes != 300 {
		t.Errorf("stage a BDDNodes = %d, want 300", rep.Stages[0].BDDNodes)
	}
	if rep.Stages[1].BDDNodes != 77 {
		t.Errorf("stage b BDDNodes = %d, want 77", rep.Stages[1].BDDNodes)
	}
	if got := reg.Gauge(obs.MBDDLiveNodes).Peak(); got != 999 {
		t.Errorf("live-nodes gauge peak = %d, want 999", got)
	}
	// Events: a.sub x2, stage a, stage b, root.
	names := make(map[string]int)
	for _, e := range sink.Events() {
		names[e.Name]++
	}
	if names["a.sub"] != 2 || names["a"] != 1 || names["b"] != 1 || names["test"] != 1 {
		t.Errorf("events = %v", names)
	}
	if run.Span() != nil {
		t.Error("Run.Span not restored after Execute")
	}
}

// TestExecuteAbortFlushesSpans is the partial-trace guarantee: a stage
// failure (here a budget error) must still end and emit the stage and
// root spans, and the report must carry the error.
func TestExecuteAbortFlushesSpans(t *testing.T) {
	sink := obs.NewTraceBuffer()
	o := &obs.Observer{Tracer: obs.NewTracer(sink)}
	run := NewRunObserved(context.Background(), Budget{}, o)

	rep, err := Execute(run, "test",
		Stage{Name: "ok", Run: func(ss *StageStats) error { return nil }},
		Stage{Name: "bad", Run: func(ss *StageStats) error {
			run.Span().Child("bad.sub", "x").End()
			return ErrBudgetExceeded
		}},
		Stage{Name: "never", Run: func(ss *StageStats) error {
			t.Error("stage after abort must not run")
			return nil
		}},
	)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Stage != "bad" || pe.Report != rep {
		t.Fatalf("error detail = %+v", err)
	}
	if len(rep.Stages) != 2 || rep.Stages[1].Err == "" || rep.Err == "" {
		t.Fatalf("report = %+v", rep)
	}
	var sawStage, sawRoot bool
	for _, e := range sink.Events() {
		switch e.Name {
		case "bad":
			sawStage = true
			if e.Args["err"] == nil {
				t.Error("failed stage span missing err attribute")
			}
		case "test":
			sawRoot = true
			if e.Args["err"] == nil {
				t.Error("root span missing err attribute")
			}
		}
	}
	if !sawStage || !sawRoot {
		t.Fatalf("aborted run did not flush spans: %v", sink.Events())
	}

	// A pre-cancelled run flushes the root span too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink2 := obs.NewTraceBuffer()
	run2 := NewRunObserved(ctx, Budget{}, &obs.Observer{Tracer: obs.NewTracer(sink2)})
	if _, err := Execute(run2, "pre", Stage{Name: "s", Run: func(*StageStats) error { return nil }}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if sink2.Len() != 1 || sink2.Events()[0].Name != "pre" {
		t.Fatalf("pre-cancelled run events = %v", sink2.Events())
	}
}

// TestExecuteNested checks that a pipeline started while Run.Span is set
// (the hybrid method's structural fallback) roots under that span.
func TestExecuteNested(t *testing.T) {
	sink := obs.NewTraceBuffer()
	o := &obs.Observer{Tracer: obs.NewTracer(sink)}
	run := NewRunObserved(context.Background(), Budget{}, o)

	_, err := Execute(run, "outer",
		Stage{Name: "host", Run: func(ss *StageStats) error {
			inner := NewRunObserved(run.Context(), Budget{}, run.Observer())
			inner.SetSpan(run.Span())
			_, err := Execute(inner, "inner",
				Stage{Name: "leaf", Run: func(*StageStats) error { return nil }})
			return err
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	outer := sink.Events()[len(sink.Events())-1]
	if outer.Name != "outer" {
		t.Fatalf("last event = %+v", outer)
	}
	// host's descendant count must include the inner pipeline's spans
	// (inner root + leaf), proving the inner trace nested under it.
	for _, e := range sink.Events() {
		if e.Name == "host" && e.Args["spans"] != nil {
			t.Fatalf("unexpected args on stage span: %v", e.Args)
		}
	}
	var rep *Report
	run3 := NewRunObserved(context.Background(), Budget{}, o)
	rep, err = Execute(run3, "outer2", Stage{Name: "host", Run: func(ss *StageStats) error {
		inner := NewRunObserved(run3.Context(), Budget{}, run3.Observer())
		inner.SetSpan(run3.Span())
		_, err := Execute(inner, "inner", Stage{Name: "leaf", Run: func(*StageStats) error { return nil }})
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Stages[0].Spans; got != 2 {
		t.Fatalf("host stage Spans = %d, want 2 (inner root + leaf)", got)
	}
}
