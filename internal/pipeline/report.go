package pipeline

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"circuitfold/internal/obs"
)

// WriteChromeTrace serializes the report as Chrome trace-event JSON:
// one "complete" event for the pipeline plus one per stage, nested by
// time containment. This gives a Perfetto-loadable flame chart from the
// Report alone, without having had an Observer attached; attach an
// Observer (and use its TraceBuffer) when sub-stage spans are wanted
// too.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return obs.WriteChromeTrace(w, nil)
	}
	events := make([]obs.Event, 0, len(r.Stages)+1)
	rootArgs := map[string]any{}
	if r.Err != "" {
		rootArgs["err"] = r.Err
	}
	events = append(events, obs.Event{
		Name: r.Pipeline, Cat: "pipeline", Ph: "X",
		TS: 0, Dur: obs.Micros(r.Total), PID: 1, TID: 1,
		Args: rootArgs,
	})
	for i := range r.Stages {
		ss := &r.Stages[i]
		args := map[string]any{}
		if ss.AndsIn >= 0 {
			args["ands_in"] = ss.AndsIn
		}
		if ss.AndsOut >= 0 {
			args["ands_out"] = ss.AndsOut
		}
		if ss.BDDNodes >= 0 {
			args["bdd_nodes"] = ss.BDDNodes
		}
		if ss.StatesIn >= 0 {
			args["states_in"] = ss.StatesIn
		}
		if ss.StatesOut >= 0 {
			args["states_out"] = ss.StatesOut
		}
		if ss.SATConflicts > 0 {
			args["sat_conflicts"] = ss.SATConflicts
		}
		if ss.Spans > 0 {
			args["spans"] = ss.Spans
		}
		if ss.Err != "" {
			args["err"] = ss.Err
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, obs.Event{
			Name: ss.Name, Cat: "stage", Ph: "X",
			TS: obs.Micros(ss.Start), Dur: obs.Micros(ss.Duration), PID: 1, TID: 1,
			Args: args,
		})
	}
	return obs.WriteChromeTrace(w, events)
}

func statCell(v int) string {
	if v < 0 {
		return "-"
	}
	return strconv.Itoa(v)
}

// String renders the report as a human-readable table: one row per
// stage with timings, sizes and counters, "-" for fields a stage does
// not produce.
func (r *Report) String() string {
	if r == nil {
		return "<nil report>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s  total=%v", r.Pipeline, r.Total)
	if r.Err != "" {
		fmt.Fprintf(&b, "  err=%s", r.Err)
	}
	b.WriteByte('\n')
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  stage\tstart\tdur\tands\tstates\tbdd\tconfl\tspans\terr")
	for i := range r.Stages {
		ss := &r.Stages[i]
		ands := "-"
		if ss.AndsIn >= 0 || ss.AndsOut >= 0 {
			ands = statCell(ss.AndsIn) + ">" + statCell(ss.AndsOut)
		}
		states := "-"
		if ss.StatesIn >= 0 || ss.StatesOut >= 0 {
			states = statCell(ss.StatesIn) + ">" + statCell(ss.StatesOut)
		}
		fmt.Fprintf(tw, "  %s\t%v\t%v\t%s\t%s\t%s\t%d\t%d\t%s\n",
			ss.Name, ss.Start.Round(10*time.Microsecond), ss.Duration.Round(10*time.Microsecond),
			ands, states, statCell(ss.BDDNodes), ss.SATConflicts, ss.Spans, ss.Err)
	}
	_ = tw.Flush()
	return b.String()
}
