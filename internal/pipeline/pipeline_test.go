package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestExecuteRecordsStagesInOrder(t *testing.T) {
	run := NewRun(nil, Budget{})
	rep, err := Execute(run, "p",
		Stage{Name: StageSchedule, Run: func(ss *StageStats) error { ss.AndsIn = 10; return nil }},
		Stage{Name: StageSynth, Run: func(ss *StageStats) error { ss.AndsOut = 7; return nil }},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipeline != "p" || len(rep.Stages) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Stages[0].Name != StageSchedule || rep.Stages[1].Name != StageSynth {
		t.Fatalf("stage order = %q, %q", rep.Stages[0].Name, rep.Stages[1].Name)
	}
	if got := rep.Stage(StageSchedule); got == nil || got.AndsIn != 10 {
		t.Fatalf("Stage(schedule) = %+v", got)
	}
	if rep.Stage("nope") != nil {
		t.Fatal("lookup of unknown stage should be nil")
	}
	// Unfilled size fields stay -1, distinguishing "not applicable" from 0.
	if rep.Stages[0].StatesOut != -1 || rep.Stages[1].AndsIn != -1 {
		t.Fatalf("unfilled sizes not -1: %+v", rep.Stages)
	}
}

func TestExecuteStageErrorCarriesPartialTrace(t *testing.T) {
	boom := errors.New("boom")
	run := NewRun(nil, Budget{})
	rep, err := Execute(run, "p",
		Stage{Name: StageSchedule, Run: func(*StageStats) error { return nil }},
		Stage{Name: StageTFF, Run: func(*StageStats) error { return boom }},
		Stage{Name: StageEncode, Run: func(*StageStats) error { t.Fatal("must not run"); return nil }},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if pe.Pipeline != "p" || pe.Stage != StageTFF {
		t.Fatalf("error site = %s/%s", pe.Pipeline, pe.Stage)
	}
	if pe.Report != rep || len(rep.Stages) != 2 || rep.Stages[1].Err == "" || rep.Err == "" {
		t.Fatalf("partial report = %+v", rep)
	}
}

func TestExecutePreCancelledYieldsTrace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := NewRun(ctx, Budget{})
	rep, err := Execute(run, "p",
		Stage{Name: StageSchedule, Run: func(*StageStats) error { t.Fatal("must not run"); return nil }},
	)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Name != StageSchedule || rep.Stages[0].Err == "" {
		t.Fatalf("pre-cancelled trace = %+v", rep)
	}
}

func TestRunWallDeadline(t *testing.T) {
	run := NewRun(nil, Budget{Wall: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := run.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Check = %v, want ErrBudgetExceeded", err)
	}
	if !run.Stop() {
		t.Fatal("Stop should be true past the deadline")
	}
	if rem, ok := run.Remaining(); !ok || rem != 0 {
		t.Fatalf("Remaining = %v, %v", rem, ok)
	}
}

func TestRunContextDeadlineTightensWall(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Millisecond))
	defer cancel()
	run := NewRun(ctx, Budget{Wall: time.Hour})
	rem, ok := run.Remaining()
	if !ok || rem > time.Second {
		t.Fatalf("Remaining = %v, %v; context deadline should win", rem, ok)
	}
}

func TestRunConflictBudget(t *testing.T) {
	run := NewRun(nil, Budget{SATConflicts: 10})
	run.AddConflicts(10)
	if err := run.Check(); err != nil {
		t.Fatalf("at the cap Check = %v, want nil", err)
	}
	run.AddConflicts(1)
	if err := run.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("past the cap Check = %v, want ErrBudgetExceeded", err)
	}
	if run.Conflicts() != 11 {
		t.Fatalf("Conflicts = %d", run.Conflicts())
	}
}

func TestRunCheckNodes(t *testing.T) {
	run := NewRun(nil, Budget{BDDNodes: 100})
	if err := run.CheckNodes(100); err != nil {
		t.Fatalf("at the cap CheckNodes = %v", err)
	}
	if err := run.CheckNodes(101); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("past the cap CheckNodes = %v, want ErrBudgetExceeded", err)
	}
}

func TestNilRunIsUnlimited(t *testing.T) {
	var run *Run
	if err := run.Check(); err != nil {
		t.Fatal(err)
	}
	if run.Stop() {
		t.Fatal("nil run must not stop")
	}
	if err := run.CheckNodes(1 << 30); err != nil {
		t.Fatal(err)
	}
	run.AddConflicts(5) // must not panic
	if run.Conflicts() != 0 {
		t.Fatal("nil run accumulates nothing")
	}
	if run.StateLimit(7) != 7 || run.NodeLimit(9) != 9 || run.ConflictLimit(3) != 3 {
		t.Fatal("nil run must fall back to defaults")
	}
	if _, ok := run.Remaining(); ok {
		t.Fatal("nil run has no deadline")
	}
	if run.Context() == nil {
		t.Fatal("nil run context must not be nil")
	}
}

func TestBudgetLimitsOverrideDefaults(t *testing.T) {
	run := NewRun(nil, Budget{BDDNodes: 11, MaxStates: 22, SATConflicts: 33})
	if run.NodeLimit(1) != 11 || run.StateLimit(1) != 22 || run.ConflictLimit(1) != 33 {
		t.Fatalf("limits = %d/%d/%d", run.NodeLimit(1), run.StateLimit(1), run.ConflictLimit(1))
	}
}
