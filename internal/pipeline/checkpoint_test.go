package pipeline

import (
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// mapCheckpoint is the simplest possible Checkpoint for tests.
type mapCheckpoint struct {
	mu   sync.Mutex
	m    map[string][]byte
	errs map[string]error // stage -> forced Save error
}

func newMapCheckpoint() *mapCheckpoint {
	return &mapCheckpoint{m: map[string][]byte{}}
}

func (c *mapCheckpoint) Load(stage string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[stage]
	return d, ok
}

func (c *mapCheckpoint) Save(stage string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.errs[stage]; err != nil {
		return err
	}
	c.m[stage] = append([]byte(nil), data...)
	return nil
}

// checkpointedStages builds a two-stage pipeline whose stages snapshot
// their outputs into out; ran records which stages actually executed.
func checkpointedStages(out *[]string, ran *[]string) []Stage {
	mk := func(name string) Stage {
		return Stage{
			Name: name,
			Run: func(ss *StageStats) error {
				*ran = append(*ran, name)
				*out = append(*out, name+"-artifact")
				return nil
			},
			Snapshot: func() ([]byte, error) {
				return []byte(name + "-artifact"), nil
			},
			Restore: func(data []byte, ss *StageStats) error {
				if string(data) != name+"-artifact" {
					return errors.New("corrupt")
				}
				*out = append(*out, string(data))
				return nil
			},
		}
	}
	return []Stage{mk("alpha"), mk("beta")}
}

func TestExecuteSnapshotsCompletedStages(t *testing.T) {
	ck := newMapCheckpoint()
	run := NewRun(nil, Budget{})
	run.SetCheckpoint(ck)
	var out, ran []string
	rep, err := Execute(run, "p", checkpointedStages(&out, &ran)...)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v, want both stages", ran)
	}
	for _, st := range []string{"alpha", "beta"} {
		if d, ok := ck.Load(st); !ok || string(d) != st+"-artifact" {
			t.Errorf("checkpoint for %s = %q, %v", st, d, ok)
		}
	}
	for _, ss := range rep.Stages {
		if ss.Resumed {
			t.Errorf("stage %s marked resumed on a cold run", ss.Name)
		}
	}
}

func TestExecuteRestoresFromCheckpoint(t *testing.T) {
	ck := newMapCheckpoint()
	ck.m["alpha"] = []byte("alpha-artifact")

	run := NewRun(nil, Budget{})
	run.SetCheckpoint(ck)
	var out, ran []string
	rep, err := Execute(run, "p", checkpointedStages(&out, &ran)...)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !reflect.DeepEqual(ran, []string{"beta"}) {
		t.Fatalf("ran %v, want only beta", ran)
	}
	if !reflect.DeepEqual(out, []string{"alpha-artifact", "beta-artifact"}) {
		t.Fatalf("outputs %v", out)
	}
	if !rep.Stage("alpha").Resumed {
		t.Error("alpha not marked resumed")
	}
	if rep.Stage("beta").Resumed {
		t.Error("beta wrongly marked resumed")
	}
}

func TestExecuteCorruptCheckpointFallsBackToRunning(t *testing.T) {
	ck := newMapCheckpoint()
	ck.m["alpha"] = []byte("garbage")

	run := NewRun(nil, Budget{})
	run.SetCheckpoint(ck)
	var out, ran []string
	rep, err := Execute(run, "p", checkpointedStages(&out, &ran)...)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !reflect.DeepEqual(ran, []string{"alpha", "beta"}) {
		t.Fatalf("ran %v, want both (corrupt restore must re-run)", ran)
	}
	if rep.Stage("alpha").Resumed {
		t.Error("alpha marked resumed after corrupt restore")
	}
	// The re-run overwrote the corrupt artifact.
	if d, _ := ck.Load("alpha"); string(d) != "alpha-artifact" {
		t.Errorf("corrupt artifact not overwritten: %q", d)
	}
}

func TestExecutePanickingRestoreFallsBack(t *testing.T) {
	ck := newMapCheckpoint()
	ck.m["boom"] = []byte("x")
	ran := false
	run := NewRun(nil, Budget{})
	run.SetCheckpoint(ck)
	_, err := Execute(run, "p", Stage{
		Name:     "boom",
		Run:      func(*StageStats) error { ran = true; return nil },
		Restore:  func([]byte, *StageStats) error { panic("bad bytes") },
		Snapshot: func() ([]byte, error) { return []byte("x"), nil },
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !ran {
		t.Error("stage did not run after panicking restore")
	}
}

func TestExecuteSaveErrorDoesNotFailStage(t *testing.T) {
	ck := newMapCheckpoint()
	ck.errs = map[string]error{"alpha": errors.New("disk full")}
	run := NewRun(nil, Budget{})
	run.SetCheckpoint(ck)
	var out, ran []string
	_, err := Execute(run, "p", checkpointedStages(&out, &ran)...)
	if err != nil {
		t.Fatalf("Execute: %v (save errors must be best-effort)", err)
	}
	if _, ok := ck.Load("alpha"); ok {
		t.Error("failed save left an artifact")
	}
	if _, ok := ck.Load("beta"); !ok {
		t.Error("beta save should still succeed")
	}
}

func TestExecuteFailedStageNotSnapshotted(t *testing.T) {
	ck := newMapCheckpoint()
	run := NewRun(nil, Budget{})
	run.SetCheckpoint(ck)
	_, err := Execute(run, "p", Stage{
		Name:     "fail",
		Run:      func(*StageStats) error { return errors.New("nope") },
		Snapshot: func() ([]byte, error) { return []byte("x"), nil },
		Restore:  func([]byte, *StageStats) error { return nil },
	})
	if err == nil {
		t.Fatal("want stage error")
	}
	if _, ok := ck.Load("fail"); ok {
		t.Error("failed stage was snapshotted")
	}
}

func TestPrefixCheckpoint(t *testing.T) {
	ck := newMapCheckpoint()
	p := PrefixCheckpoint(ck, "functional")
	if err := p.Save("tff", []byte("m")); err != nil {
		t.Fatal(err)
	}
	if d, ok := ck.Load("functional/tff"); !ok || string(d) != "m" {
		t.Errorf("prefixed key missing: %q %v", d, ok)
	}
	if d, ok := p.Load("tff"); !ok || string(d) != "m" {
		t.Errorf("prefixed load: %q %v", d, ok)
	}
	if PrefixCheckpoint(nil, "x") != nil {
		t.Error("PrefixCheckpoint(nil) must stay nil")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		rep  Report
	}{
		{"empty", Report{Pipeline: "p"}},
		{"full", Report{
			Pipeline: "functional",
			Total:    123 * time.Millisecond,
			Err:      "stage tff: pipeline: budget exceeded",
			Stages: []StageStats{
				{
					Name: "schedule", Start: 0, Duration: 5 * time.Millisecond,
					AndsIn: 100, AndsOut: 100, BDDNodes: -1, StatesIn: -1, StatesOut: -1,
				},
				{
					Name: "tff", Start: 5 * time.Millisecond, Duration: 90 * time.Millisecond,
					AndsIn: 100, AndsOut: -1, BDDNodes: 4096, StatesIn: 1, StatesOut: 32,
					SATConflicts: 17, Spans: 12, Resumed: true,
					Err: "pipeline: budget exceeded",
				},
			},
		}},
		{"zero_counters", Report{
			Pipeline: "structural",
			Stages: []StageStats{
				{Name: "synth", AndsIn: 0, AndsOut: 0, BDDNodes: 0, StatesIn: 0, StatesOut: 0},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(&tc.rep)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var got Report
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, tc.rep) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v\nwire %s", got, tc.rep, data)
			}
			// Marshal again: the wire form must be stable.
			data2, err := json.Marshal(&got)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(data) != string(data2) {
				t.Errorf("wire form unstable:\n%s\n%s", data, data2)
			}
		})
	}
}

func TestRungReportJSONRoundTrip(t *testing.T) {
	rr := RungReport{
		Rung:      "functional",
		Duration:  42 * time.Millisecond,
		Err:       "pipeline: budget exceeded",
		SelfCheck: "fail",
		Report: &Report{
			Pipeline: "functional",
			Stages:   []StageStats{{Name: "schedule", AndsIn: 7, AndsOut: 7, BDDNodes: -1, StatesIn: -1, StatesOut: -1}},
			Total:    40 * time.Millisecond,
		},
	}
	data, err := json.Marshal(&rr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got RungReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, rr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rr)
	}
}
