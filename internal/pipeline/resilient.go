package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"circuitfold/internal/obs"
)

// Sentinels for the resilience layer. ErrInternal marks a failure that
// is the engine's fault rather than the instance's: a recovered panic,
// an injected fault, or a stage that violated its own contract.
// ErrSelfCheck marks a fold that completed but failed the post-fold
// equivalence self-check. Both are retryable by RunResilient.
var (
	// ErrInternal reports a recovered panic or other internal fault.
	ErrInternal = errors.New("pipeline: internal error")

	// ErrSelfCheck reports that a completed fold failed its bounded
	// equivalence self-check and was discarded.
	ErrSelfCheck = errors.New("pipeline: self-check failed")
)

// InternalError is the typed form of a recovered panic: where it
// happened, the panic value, and the goroutine stack captured at the
// recover boundary. It matches ErrInternal via errors.Is.
type InternalError struct {
	Stage string // stage or entry-point name of the recover boundary
	Value any    // the value passed to panic()
	Stack []byte // debug.Stack() captured at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("%v: panic in %s: %v", ErrInternal, e.Stage, e.Value)
}

// Unwrap lets errors.Is(err, ErrInternal) match, and also exposes an
// underlying error panic value (so a panic(err) keeps err's identity).
func (e *InternalError) Unwrap() []error {
	if cause, ok := e.Value.(error); ok {
		return []error{ErrInternal, cause}
	}
	return []error{ErrInternal}
}

// AsInternal converts a recovered panic value into an error. Panics
// that are themselves typed control-flow errors — budget unwinds from
// the BDD node cap, cancellation, or an already-classified internal
// error — pass through with their identity intact; anything else
// becomes an *InternalError carrying the stage name and stack.
func AsInternal(stage string, v any) error {
	if err, ok := v.(error); ok {
		if errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrCanceled) || errors.Is(err, ErrInternal) {
			return fmt.Errorf("%s: %w", stage, err)
		}
	}
	return &InternalError{Stage: stage, Value: v, Stack: debug.Stack()}
}

// RecoverTo is the deferred form of AsInternal for public entry points:
//
//	func Fold(...) (r *Result, err error) {
//		defer pipeline.RecoverTo(&err, "fold")
//		...
//	}
//
// A panic unwinding past the defer is converted in place of err; the
// original return value is lost (the fold did not complete).
func RecoverTo(errp *error, stage string) {
	if v := recover(); v != nil {
		*errp = AsInternal(stage, v)
	}
}

// Rung is one attempt policy of a degradation ladder: a name for
// reporting, a budget for the attempt's Run, the attempt itself, and an
// optional post-success verification gate. Attempt and Verify both run
// inside recover boundaries, so a panicking rung falls through to the
// next one instead of unwinding out of RunResilient.
type Rung struct {
	Name    string
	Budget  Budget
	Attempt func(*Run) (any, error)
	Verify  func(any, *Run) error
}

// RungReport records how one rung of a resilient run went.
type RungReport struct {
	Rung      string        `json:"rung"`
	Duration  time.Duration `json:"duration_ns"`
	Err       string        `json:"err,omitempty"`        // empty on the winning rung
	SelfCheck string        `json:"self_check,omitempty"` // "pass", "fail", or empty when not verified
	Report    *Report       `json:"report,omitempty"`     // partial stage trace salvaged from a failed rung
}

// RunResilient walks the ladder until a rung produces a verified
// result. A rung's failure is retryable — the next rung is attempted
// and obs.MFoldFallbacks is incremented — when it matches
// ErrBudgetExceeded (which ErrNodeLimit and ErrResourceLimit wrap),
// ErrInternal (recovered panics, injected faults), or ErrSelfCheck.
// ErrCanceled and any other error abort the ladder immediately: the
// caller asked to stop, or the instance itself is invalid and no rung
// will fix it.
//
// The returned reports always cover every rung attempted, each
// salvaging the partial stage trace when the rung's error was a typed
// *Error. When every rung fails, the error returned is the last rung's,
// so errors.Is sees the most-degraded failure mode.
func RunResilient(ctx context.Context, o *obs.Observer, rungs []Rung) (any, []RungReport, error) {
	if len(rungs) == 0 {
		return nil, nil, errors.New("pipeline: resilient run needs at least one rung")
	}
	fallbacks := o.Counter(obs.MFoldFallbacks)
	selfFails := o.Counter(obs.MFoldSelfCheck)
	reports := make([]RungReport, 0, len(rungs))
	var lastErr error
	for i, rung := range rungs {
		run := NewRunObserved(ctx, rung.Budget, o)
		rr := RungReport{Rung: rung.Name}
		v, err := attemptRung(run, rung)
		if err == nil && rung.Verify != nil {
			if verr := verifyRung(run, rung, v); verr != nil {
				selfFails.Add(1)
				rr.SelfCheck = "fail"
				err = fmt.Errorf("%s: %w: %v", rung.Name, ErrSelfCheck, verr)
			} else {
				rr.SelfCheck = "pass"
			}
		}
		rr.Duration = run.Elapsed()
		if err == nil {
			reports = append(reports, rr)
			return v, reports, nil
		}
		rr.Err = err.Error()
		var pe *Error
		if errors.As(err, &pe) {
			rr.Report = pe.Report
		}
		reports = append(reports, rr)
		lastErr = err
		if errors.Is(err, ErrCanceled) {
			return nil, reports, err
		}
		retryable := errors.Is(err, ErrBudgetExceeded) ||
			errors.Is(err, ErrInternal) ||
			errors.Is(err, ErrSelfCheck)
		if !retryable {
			return nil, reports, err
		}
		if i < len(rungs)-1 {
			fallbacks.Add(1)
		}
	}
	return nil, reports, fmt.Errorf("pipeline: ladder exhausted after %d rungs: %w", len(reports), lastErr)
}

// attemptRung runs one rung inside a recover boundary so a panicking
// attempt reads as an ErrInternal failure of that rung.
func attemptRung(run *Run, rung Rung) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = AsInternal(rung.Name, r)
			v = nil
			if errors.Is(err, ErrInternal) {
				run.Metrics().Counter(obs.MFoldPanics).Add(1)
			}
		}
	}()
	return rung.Attempt(run)
}

// verifyRung gates a successful attempt; a panicking verifier counts
// as a (conservative) verification failure.
func verifyRung(run *Run, rung Rung, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = AsInternal(rung.Name+".verify", r)
			if errors.Is(err, ErrInternal) {
				run.Metrics().Counter(obs.MFoldPanics).Add(1)
			}
		}
	}()
	return rung.Verify(v, run)
}
