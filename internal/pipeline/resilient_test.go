package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"circuitfold/internal/obs"
)

func observer() (*obs.Observer, *obs.Registry) {
	reg := obs.NewRegistry()
	return &obs.Observer{Metrics: reg}, reg
}

func TestRecoverToClassifies(t *testing.T) {
	boom := func() (err error) {
		defer RecoverTo(&err, "boom")
		panic("kaboom")
	}
	err := boom()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panic not classified as ErrInternal: %v", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("no *InternalError in chain: %v", err)
	}
	if ie.Stage != "boom" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError missing stage/stack: %+v", ie)
	}

	// Typed control-flow panics keep their identity instead of being
	// reclassified as internal faults.
	budget := func() (err error) {
		defer RecoverTo(&err, "stage")
		panic(fmt.Errorf("node cap: %w", ErrBudgetExceeded))
	}
	err = budget()
	if !errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrInternal) {
		t.Fatalf("budget panic misclassified: %v", err)
	}
}

func TestExecuteRecoversStagePanic(t *testing.T) {
	o, reg := observer()
	run := NewRunObserved(context.Background(), Budget{}, o)
	rep, err := Execute(run, "p",
		Stage{Name: "ok", Run: func(*StageStats) error { return nil }},
		Stage{Name: "bad", Run: func(*StageStats) error { panic("index out of range [demo]") }},
		Stage{Name: "never", Run: func(*StageStats) error { t.Fatal("ran past panic"); return nil }},
	)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("stage panic not converted to ErrInternal: %v", err)
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Stage != "bad" {
		t.Fatalf("missing typed *Error for stage bad: %v", err)
	}
	if rep == nil || len(rep.Stages) != 2 || rep.Stages[1].Err == "" {
		t.Fatalf("partial trace not salvaged: %+v", rep)
	}
	if n := reg.Counter(obs.MFoldPanics).Value(); n != 1 {
		t.Fatalf("fold.panics_recovered = %d, want 1", n)
	}
}

func TestRunResilientDescendsLadder(t *testing.T) {
	o, reg := observer()
	rungs := []Rung{
		{Name: "functional", Attempt: func(*Run) (any, error) {
			return nil, fmt.Errorf("blew up: %w", ErrBudgetExceeded)
		}},
		{Name: "hybrid", Attempt: func(*Run) (any, error) {
			panic("hybrid internal bug")
		}},
		{Name: "structural", Attempt: func(*Run) (any, error) {
			return "folded", nil
		}, Verify: func(v any, _ *Run) error {
			if v != "folded" {
				return errors.New("wrong value")
			}
			return nil
		}},
	}
	v, reps, err := RunResilient(context.Background(), o, rungs)
	if err != nil {
		t.Fatalf("ladder failed: %v", err)
	}
	if v != "folded" {
		t.Fatalf("wrong result %v", v)
	}
	if len(reps) != 3 || reps[0].Err == "" || reps[1].Err == "" || reps[2].Err != "" {
		t.Fatalf("rung reports wrong: %+v", reps)
	}
	if reps[2].SelfCheck != "pass" {
		t.Fatalf("winning rung not self-checked: %+v", reps[2])
	}
	if n := reg.Counter(obs.MFoldFallbacks).Value(); n != 2 {
		t.Fatalf("fold.fallbacks = %d, want 2", n)
	}
	if n := reg.Counter(obs.MFoldPanics).Value(); n != 1 {
		t.Fatalf("fold.panics_recovered = %d, want 1", n)
	}
}

func TestRunResilientSelfCheckFallsThrough(t *testing.T) {
	o, reg := observer()
	rungs := []Rung{
		{Name: "wrong", Attempt: func(*Run) (any, error) { return 1, nil },
			Verify: func(any, *Run) error { return errors.New("outputs differ at vector 3") }},
		{Name: "right", Attempt: func(*Run) (any, error) { return 2, nil },
			Verify: func(any, *Run) error { return nil }},
	}
	v, reps, err := RunResilient(context.Background(), o, rungs)
	if err != nil || v != 2 {
		t.Fatalf("got %v, %v", v, err)
	}
	if reps[0].SelfCheck != "fail" {
		t.Fatalf("first rung self-check not recorded: %+v", reps[0])
	}
	if n := reg.Counter(obs.MFoldSelfCheck).Value(); n != 1 {
		t.Fatalf("fold.selfcheck_fail = %d, want 1", n)
	}
}

func TestRunResilientAbortsOnCancelAndNonRetryable(t *testing.T) {
	o, _ := observer()
	called := 0
	rungs := []Rung{
		{Name: "a", Attempt: func(*Run) (any, error) {
			called++
			return nil, fmt.Errorf("stop: %w", ErrCanceled)
		}},
		{Name: "b", Attempt: func(*Run) (any, error) { called++; return 1, nil }},
	}
	_, _, err := RunResilient(context.Background(), o, rungs)
	if !errors.Is(err, ErrCanceled) || called != 1 {
		t.Fatalf("cancel did not abort ladder: err=%v called=%d", err, called)
	}

	called = 0
	rungs[0].Attempt = func(*Run) (any, error) {
		called++
		return nil, errors.New("fold: T exceeds inputs")
	}
	_, _, err = RunResilient(context.Background(), o, rungs)
	if err == nil || errors.Is(err, ErrCanceled) || called != 1 {
		t.Fatalf("non-retryable error did not abort ladder: err=%v called=%d", err, called)
	}
}

func TestRunResilientExhausted(t *testing.T) {
	o, reg := observer()
	rungs := []Rung{
		{Name: "a", Attempt: func(*Run) (any, error) { return nil, fmt.Errorf("a: %w", ErrBudgetExceeded) }},
		{Name: "b", Attempt: func(*Run) (any, error) { panic("b died") }},
	}
	_, reps, err := RunResilient(context.Background(), o, rungs)
	if err == nil || !errors.Is(err, ErrInternal) {
		t.Fatalf("exhausted ladder should surface last error: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 rung reports, got %+v", reps)
	}
	// Only descents between rungs count as fallbacks, not the final failure.
	if n := reg.Counter(obs.MFoldFallbacks).Value(); n != 1 {
		t.Fatalf("fold.fallbacks = %d, want 1", n)
	}
}

func TestRunResilientSalvagesPartialTrace(t *testing.T) {
	o, _ := observer()
	rungs := []Rung{
		{Name: "fails", Attempt: func(run *Run) (any, error) {
			_, err := Execute(run, "fails",
				Stage{Name: StageSchedule, Run: func(*StageStats) error { return nil }},
				Stage{Name: StageTFF, Run: func(*StageStats) error { panic("tff blew") }},
			)
			return nil, err
		}},
		{Name: "wins", Attempt: func(*Run) (any, error) { return 1, nil }},
	}
	_, reps, err := RunResilient(context.Background(), o, rungs)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Report == nil || len(reps[0].Report.Stages) != 2 {
		t.Fatalf("partial trace not salvaged into rung report: %+v", reps[0])
	}
}
