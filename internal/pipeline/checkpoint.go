package pipeline

// Checkpoint is the per-stage persistence hook a Run may carry. A stage
// that declares Snapshot/Restore functions (see Stage) has its output
// artifact saved under its stage name after it completes, and is
// restored — skipping the stage's work entirely — when a later run over
// the same Checkpoint finds the artifact. The store behind the
// interface decides scope and durability: internal/job keys it by job,
// with in-memory and file-backed implementations.
//
// Both methods must be safe for concurrent use; folds checkpoint from
// worker goroutines. Save is best-effort from the pipeline's point of
// view: a failed save is recorded on the stage's span but never fails
// the stage, so checkpointing can be bolted onto a fold without
// changing its failure modes.
type Checkpoint interface {
	// Load returns the artifact saved for stage, if any.
	Load(stage string) ([]byte, bool)
	// Save persists the artifact for stage, replacing any prior one.
	Save(stage string, data []byte) error
}

// prefixCheckpoint namespaces stage keys under "<prefix>/", so several
// pipelines (e.g. the rungs of a degradation ladder) can share one
// Checkpoint without colliding on the canonical stage names.
type prefixCheckpoint struct {
	ck     Checkpoint
	prefix string
}

func (p prefixCheckpoint) Load(stage string) ([]byte, bool) {
	return p.ck.Load(p.prefix + "/" + stage)
}

func (p prefixCheckpoint) Save(stage string, data []byte) error {
	return p.ck.Save(p.prefix+"/"+stage, data)
}

// PrefixCheckpoint returns ck with every stage key prefixed by
// "<prefix>/". A nil ck stays nil, so callers can thread an optional
// checkpoint without guarding.
func PrefixCheckpoint(ck Checkpoint, prefix string) Checkpoint {
	if ck == nil {
		return nil
	}
	return prefixCheckpoint{ck: ck, prefix: prefix}
}
