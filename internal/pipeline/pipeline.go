// Package pipeline is the pass-pipeline engine shared by every fold
// method. A fold is expressed as a sequence of named Stages executed
// over one Run, which carries the caller's context.Context, the
// resource Budget (wall clock, BDD nodes, SAT conflicts, FSM states)
// and the per-stage trace. Lower layers (BDD sifting, SAT search, the
// sweep engine, FSM minimization) poll the Run through cheap interrupt
// hooks, so cancelling the context or exhausting a budget aborts a fold
// mid-stage with a typed error and a partial trace instead of running
// to completion or truncating silently.
//
// The package depends only on the standard library so that every layer
// of the tool (aig, bdd, sat, fsm, core, eqcheck, exp, the root API)
// can import it without cycles.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"circuitfold/internal/obs"
)

// Sentinel errors. Budget exhaustion (wall clock, nodes, conflicts,
// states) yields ErrBudgetExceeded; an external context cancellation
// yields ErrCanceled. Both are matched with errors.Is through the
// *Error wrapper that Execute returns.
var (
	// ErrBudgetExceeded reports that a resource budget (wall-clock
	// deadline, BDD node budget, SAT conflict budget, or FSM state
	// cap) was exhausted mid-run.
	ErrBudgetExceeded = errors.New("pipeline: budget exceeded")

	// ErrCanceled reports that the run's context was cancelled.
	ErrCanceled = errors.New("pipeline: canceled")
)

// Canonical stage names. Every fold method composes a subset of these.
const (
	StageSchedule = "schedule" // pin scheduling (Algorithms 1 and 2)
	StageTFF      = "tff"      // time-frame folding to an ISFSM
	StageMinimize = "minimize" // MeMin-style state minimization
	StageEncode   = "encode"   // state encoding + next-state synthesis
	StageSynth    = "synth"    // structural network construction
	StageSweep    = "sweep"    // post-fold AIG optimization
	StageVerify   = "verify"   // equivalence check of the fold
)

// Budget bounds the resources one Run may consume. Zero fields mean
// "no limit here"; callers that want a default cap read it through
// Run.StateLimit / Run.NodeLimit / Run.ConflictLimit.
type Budget struct {
	// Wall is the wall-clock allowance for the whole run. The
	// deadline is fixed when the Run is created.
	Wall time.Duration
	// BDDNodes caps the live node count of any BDD manager working
	// for the run.
	BDDNodes int
	// SATConflicts caps the total SAT conflicts across all solvers
	// working for the run.
	SATConflicts int64
	// MaxStates caps the number of time-frame-folding states
	// (per cluster, for the hybrid method).
	MaxStates int
}

// StageStats is one entry of a Run's trace: what a stage did and how
// long it took. Size fields are -1 when not applicable to the stage.
// The JSON field names are a stable wire format (cmd/bench artifacts,
// the foldd job API, and checkpointed reports all carry them); zero
// counters are omitted so a marshal→unmarshal round trip is deep-equal
// and sparse stages stay small on the wire.
type StageStats struct {
	Name         string        `json:"name"`
	Start        time.Duration `json:"start_ns"`             // offset from run start
	Duration     time.Duration `json:"duration_ns"`          //
	AndsIn       int           `json:"ands_in,omitempty"`    // AIG size entering the stage
	AndsOut      int           `json:"ands_out,omitempty"`   // AIG size leaving the stage
	BDDNodes     int           `json:"bdd_nodes,omitempty"`  // peak live BDD nodes seen
	StatesIn     int           `json:"states_in,omitempty"`  // FSM states entering
	StatesOut    int           `json:"states_out,omitempty"` // FSM states leaving
	SATConflicts int64         `json:"sat_conflicts,omitempty"`
	Spans        int           `json:"spans,omitempty"`   // child spans opened under the stage (0 unless observed)
	Resumed      bool          `json:"resumed,omitempty"` // true when the stage was restored from a checkpoint
	Err          string        `json:"err,omitempty"`     // non-empty when the stage aborted
}

// Report is the observable outcome of a pipeline run: which stages ran
// (possibly partially), in order, plus totals. It is attached to fold
// results and serialized by cmd/bench.
type Report struct {
	Pipeline string        `json:"pipeline"`
	Stages   []StageStats  `json:"stages"`
	Total    time.Duration `json:"total_ns"`
	Err      string        `json:"err,omitempty"`
}

// Stage looks up a stage's stats by name, or nil if it never ran.
func (r *Report) Stage(name string) *StageStats {
	if r == nil {
		return nil
	}
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// Error is the typed failure Execute returns: which pipeline and stage
// aborted, the partial trace up to that point, and the underlying
// cause (ErrBudgetExceeded, ErrCanceled, or a stage's own error).
type Error struct {
	Pipeline string
	Stage    string
	Report   *Report
	Err      error
}

func (e *Error) Error() string {
	return fmt.Sprintf("pipeline %s: stage %s: %v", e.Pipeline, e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Run is the shared state a pipeline executes over: context, budget,
// start time, and monotonically accumulated counters. A nil *Run is
// valid everywhere and means "no context, no budget" — that keeps
// low-level code free of nil checks.
type Run struct {
	ctx       context.Context
	budget    Budget
	start     time.Time
	deadline  time.Time // zero when Budget.Wall == 0
	conflicts atomic.Int64

	observer  *obs.Observer
	span      atomic.Pointer[obs.Span] // current span new work should nest under
	bddPeak   atomic.Int64             // peak live BDD nodes since last reset
	liveNodes *obs.Gauge               // resolved obs.MBDDLiveNodes, nil when unobserved

	checkpoint Checkpoint // per-stage artifact store, nil when not checkpointing
}

// NewRun binds a context and budget into a Run. ctx may be nil.
func NewRun(ctx context.Context, b Budget) *Run {
	return NewRunObserved(ctx, b, nil)
}

// NewRunObserved is NewRun with an observability hook attached: spans
// opened by Execute and the lower layers flow to o.Tracer, metrics to
// o.Metrics. A nil o (or a nil *Run anywhere downstream) disables
// observability with zero overhead.
func NewRunObserved(ctx context.Context, b Budget, o *obs.Observer) *Run {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &Run{ctx: ctx, budget: b, start: time.Now()}
	if b.Wall > 0 {
		r.deadline = r.start.Add(b.Wall)
	}
	if cd, ok := ctx.Deadline(); ok && (r.deadline.IsZero() || cd.Before(r.deadline)) {
		r.deadline = cd
	}
	if o != nil {
		r.observer = o
		r.liveNodes = o.Gauge(obs.MBDDLiveNodes)
	}
	return r
}

// Observer returns the run's observability hook (nil when unobserved).
func (r *Run) Observer() *obs.Observer {
	if r == nil {
		return nil
	}
	return r.observer
}

// Metrics returns the run's metrics registry (nil when unobserved).
func (r *Run) Metrics() *obs.Registry {
	if r == nil || r.observer == nil {
		return nil
	}
	return r.observer.Metrics
}

// Span returns the span that new work should nest under: Execute points
// it at the running stage's span for the stage's duration. Nil when
// unobserved.
func (r *Run) Span() *obs.Span {
	if r == nil {
		return nil
	}
	return r.span.Load()
}

// SetSpan redirects where new child spans hang; used by Execute and by
// stages that introduce their own grouping (e.g. hybrid clusters).
func (r *Run) SetSpan(s *obs.Span) {
	if r != nil {
		r.span.Store(s)
	}
}

// NoteBDDNodes records a BDD manager's current live node count against
// the run: it feeds the bdd.live_nodes gauge and the per-stage peak
// that Execute writes into StageStats.BDDNodes.
func (r *Run) NoteBDDNodes(n int) {
	if r == nil {
		return
	}
	v := int64(n)
	for {
		p := r.bddPeak.Load()
		if v <= p || r.bddPeak.CompareAndSwap(p, v) {
			break
		}
	}
	r.liveNodes.Set(v)
}

// BDDPeak returns the peak node count noted since the last stage began.
func (r *Run) BDDPeak() int {
	if r == nil {
		return 0
	}
	return int(r.bddPeak.Load())
}

func (r *Run) resetBDDPeak() {
	if r != nil {
		r.bddPeak.Store(0)
	}
}

// SetCheckpoint attaches a per-stage artifact store to the run. Stages
// that declare Snapshot/Restore hooks save their outputs through it and
// skip re-running when a saved artifact exists. Nil (the default)
// disables checkpointing.
func (r *Run) SetCheckpoint(ck Checkpoint) {
	if r != nil {
		r.checkpoint = ck
	}
}

// Checkpoint returns the run's checkpoint store (nil when not
// checkpointing).
func (r *Run) Checkpoint() Checkpoint {
	if r == nil {
		return nil
	}
	return r.checkpoint
}

// Context returns the run's context (context.Background for a nil run).
func (r *Run) Context() context.Context {
	if r == nil || r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// Budget returns the run's budget (the zero Budget for a nil run).
func (r *Run) Budget() Budget {
	if r == nil {
		return Budget{}
	}
	return r.budget
}

// Check reports why the run must stop, or nil to keep going. Context
// cancellation maps to ErrCanceled; an elapsed wall deadline or an
// exhausted conflict budget map to ErrBudgetExceeded.
func (r *Run) Check() error {
	if r == nil {
		return nil
	}
	select {
	case <-r.ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(r.ctx))
	default:
	}
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		return fmt.Errorf("%w: wall clock (%v)", ErrBudgetExceeded, r.budget.Wall)
	}
	if r.budget.SATConflicts > 0 && r.conflicts.Load() > r.budget.SATConflicts {
		return fmt.Errorf("%w: SAT conflicts (%d)", ErrBudgetExceeded, r.budget.SATConflicts)
	}
	return nil
}

// Stop is Check as a boolean, for hot loops that only need yes/no
// (e.g. the SAT solver's search loop).
func (r *Run) Stop() bool { return r.Check() != nil }

// CheckNodes is Check plus the BDD node budget: n is the manager's
// current live node count.
func (r *Run) CheckNodes(n int) error {
	r.NoteBDDNodes(n)
	if err := r.Check(); err != nil {
		return err
	}
	if r != nil && r.budget.BDDNodes > 0 && n > r.budget.BDDNodes {
		return fmt.Errorf("%w: BDD nodes (%d > %d)", ErrBudgetExceeded, n, r.budget.BDDNodes)
	}
	return nil
}

// AddConflicts accumulates SAT conflicts spent on the run's behalf.
func (r *Run) AddConflicts(n int64) {
	if r != nil && n > 0 {
		r.conflicts.Add(n)
	}
}

// Conflicts returns the conflicts accumulated so far.
func (r *Run) Conflicts() int64 {
	if r == nil {
		return 0
	}
	return r.conflicts.Load()
}

// Elapsed returns the time since the run began.
func (r *Run) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Remaining returns the time left before the wall deadline, and whether
// a deadline exists at all. A run past its deadline reports zero.
func (r *Run) Remaining() (time.Duration, bool) {
	if r == nil || r.deadline.IsZero() {
		return 0, false
	}
	d := time.Until(r.deadline)
	if d < 0 {
		d = 0
	}
	return d, true
}

// StateLimit returns the FSM state cap, or def when the budget leaves
// it unset.
func (r *Run) StateLimit(def int) int {
	if r == nil || r.budget.MaxStates <= 0 {
		return def
	}
	return r.budget.MaxStates
}

// NodeLimit returns the BDD node cap, or def when unset.
func (r *Run) NodeLimit(def int) int {
	if r == nil || r.budget.BDDNodes <= 0 {
		return def
	}
	return r.budget.BDDNodes
}

// ConflictLimit returns the SAT conflict cap, or def when unset.
func (r *Run) ConflictLimit(def int64) int64 {
	if r == nil || r.budget.SATConflicts <= 0 {
		return def
	}
	return r.budget.SATConflicts
}

// Stage is one named step of a pipeline. Run receives the stage's own
// stats record to fill in sizes and counters; duration and start are
// recorded by Execute.
//
// Snapshot and Restore are the optional checkpoint hooks. When the Run
// carries a Checkpoint, Execute calls Snapshot after the stage
// completes and saves the bytes under the stage name; on a later run
// over the same Checkpoint, Execute calls Restore with the saved bytes
// instead of Run, marking the stage Resumed in its StageStats. Restore
// must leave the pipeline's closure state exactly as a successful Run
// would have (the whole point is that downstream stages cannot tell the
// difference); a Restore that fails — corrupt or version-skewed bytes —
// falls back to running the stage normally.
type Stage struct {
	Name string
	Run  func(*StageStats) error

	// Snapshot serializes the stage's output artifact.
	Snapshot func() ([]byte, error)
	// Restore rebuilds the stage's output from a snapshot, filling the
	// stats fields Run would have filled.
	Restore func([]byte, *StageStats) error
}

// Execute runs the stages in order over run, building the trace as it
// goes. The first stage error (or a failed pre-stage Run.Check) stops
// the pipeline; the returned *Error wraps the cause and carries the
// partial Report, which is also returned directly so callers can attach
// it to partial results. A pre-cancelled run still yields a one-entry
// trace recording which stage refused to start.
//
// When the run is observed, Execute opens a root span for the pipeline
// and a child span per stage, pointing Run.Span at the running stage so
// lower layers nest their sub-stage spans correctly. Spans end (and so
// flush to the sink) even when a stage aborts, which is what makes a
// budget-exceeded run leave a usable partial trace. A pipeline executed
// while Run.Span is already set (the hybrid method's nested structural
// fallback) roots itself under that span instead.
func Execute(run *Run, name string, stages ...Stage) (*Report, error) {
	rep := &Report{Pipeline: name}
	prev := run.Span()
	var root *obs.Span
	if prev != nil {
		root = prev.Child(name, "pipeline")
	} else {
		root = run.Observer().Span(name, "pipeline")
	}
	defer run.SetSpan(prev)
	fail := func(stage string, err error) (*Report, error) {
		rep.Total = run.Elapsed()
		rep.Err = err.Error()
		root.SetStr("err", err.Error())
		root.End()
		return rep, &Error{Pipeline: name, Stage: stage, Report: rep, Err: err}
	}
	for _, st := range stages {
		ss := StageStats{
			Name: st.Name, Start: run.Elapsed(),
			AndsIn: -1, AndsOut: -1, BDDNodes: -1, StatesIn: -1, StatesOut: -1,
		}
		if err := run.Check(); err != nil {
			ss.Err = err.Error()
			rep.Stages = append(rep.Stages, ss)
			return fail(st.Name, err)
		}
		sp := root.Child(st.Name, "stage")
		run.SetSpan(sp)
		run.resetBDDPeak()
		err := runStage(run, st, &ss)
		if ss.Resumed && err == nil {
			// Restored from a checkpoint: record the (near-zero) restore
			// time and move on without snapshotting again.
			run.SetSpan(prev)
			ss.Duration = run.Elapsed() - ss.Start
			sp.SetStr("checkpoint", "restored")
			sp.End()
			rep.Stages = append(rep.Stages, ss)
			continue
		}
		if err == nil {
			saveStage(run, st, sp)
		}
		run.SetSpan(prev)
		ss.Duration = run.Elapsed() - ss.Start
		// Per-stage latency histogram ("stage.<name>.seconds"), aborted
		// stages included: their duration is real work the SLO math must
		// see. Restored stages are excluded above — a checkpoint load is
		// not a stage execution.
		run.Metrics().Timing(obs.StageSeconds(st.Name)).Observe(ss.Duration)
		if pk := run.BDDPeak(); pk > 0 && ss.BDDNodes < 0 {
			ss.BDDNodes = pk
		}
		ss.Spans = sp.Descendants()
		if err != nil {
			ss.Err = err.Error()
			sp.SetStr("err", err.Error())
		}
		sp.End()
		rep.Stages = append(rep.Stages, ss)
		if err != nil {
			return fail(st.Name, err)
		}
	}
	rep.Total = run.Elapsed()
	root.End()
	return rep, nil
}

// runStage is the per-stage recover boundary. A panicking stage is
// converted to an error instead of unwinding through Execute: typed
// control-flow panics (the BDD node cap's budget unwind, cancellation)
// keep their identity, everything else becomes an *InternalError with
// the stage name and stack, counted under obs.MFoldPanics.
//
// When the run carries a Checkpoint holding an artifact for this stage
// and the stage can Restore, restoration is attempted first; a failed
// restore (corrupt bytes, version skew, or a panic in Restore) is
// swallowed and the stage runs normally, so a bad checkpoint degrades
// to a cold run instead of failing the fold.
func runStage(run *Run, st Stage, ss *StageStats) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = AsInternal(st.Name, v)
			if errors.Is(err, ErrInternal) {
				run.Metrics().Counter(obs.MFoldPanics).Add(1)
			}
		}
	}()
	if ck := run.Checkpoint(); ck != nil && st.Restore != nil {
		if data, ok := ck.Load(st.Name); ok {
			if restoreStage(st, data, ss) == nil {
				ss.Resumed = true
				return nil
			}
		}
	}
	return st.Run(ss)
}

// restoreStage calls a stage's Restore hook inside its own recover
// boundary: a panic while deserializing a checkpoint reads as a failed
// restore, not a failed stage.
func restoreStage(st Stage, data []byte, ss *StageStats) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = AsInternal(st.Name+".restore", v)
		}
	}()
	return st.Restore(data, ss)
}

// saveStage snapshots a completed stage into the run's checkpoint.
// Best-effort by contract: snapshot or save failures are recorded on
// the stage's span and otherwise ignored.
func saveStage(run *Run, st Stage, sp *obs.Span) {
	ck := run.Checkpoint()
	if ck == nil || st.Snapshot == nil {
		return
	}
	defer func() {
		if v := recover(); v != nil {
			sp.SetStr("checkpoint_err", fmt.Sprint(v))
		}
	}()
	data, err := st.Snapshot()
	if err == nil {
		err = ck.Save(st.Name, data)
	}
	if err != nil {
		sp.SetStr("checkpoint_err", err.Error())
	} else {
		sp.SetStr("checkpoint", "saved")
	}
}
