package circuitfold_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"circuitfold"
	"circuitfold/internal/fault"
	"circuitfold/internal/gen"
)

// bigCircuit is a workload large enough that an unbounded fold takes
// far longer than the deadlines used below.
func bigCircuit() *circuitfold.Circuit {
	return gen.Random(7, 256, 64, 20000)
}

// wantAborted asserts the typed-cancellation contract: err matches
// sentinel and unwraps to a *PipelineError with a non-empty partial
// stage trace.
func wantAborted(t *testing.T, err, sentinel error) {
	t.Helper()
	if err == nil {
		t.Fatal("fold should have aborted")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	var pe *circuitfold.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PipelineError", err, err)
	}
	if pe.Report == nil || len(pe.Report.Stages) == 0 {
		t.Fatalf("aborted fold must carry a partial trace, got %+v", pe.Report)
	}
	if pe.Report.Err == "" {
		t.Fatal("partial report must record the error")
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to
// within slack of base, failing after a grace period.
func checkNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", base, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFunctionalPreCancelledContext(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := circuitfold.DefaultOptions()
	opt.Context = ctx
	opt.Timeout = 0
	_, err := circuitfold.Functional(bigCircuit(), 8, opt)
	wantAborted(t, err, circuitfold.ErrCanceled)
	checkNoGoroutineLeak(t, base)
}

func TestFunctionalMidRunDeadline(t *testing.T) {
	// The acceptance scenario: a 1 ms deadline on a large random
	// circuit must return a typed cancellation error promptly, with a
	// non-empty partial stage trace.
	base := runtime.NumGoroutine()
	opt := circuitfold.DefaultOptions()
	opt.Timeout = 0
	opt.Budget = circuitfold.Budget{Wall: time.Millisecond}
	start := time.Now()
	_, err := circuitfold.Functional(bigCircuit(), 8, opt)
	elapsed := time.Since(start)
	wantAborted(t, err, circuitfold.ErrBudgetExceeded)
	if elapsed > 10*time.Second {
		t.Fatalf("abort took %v, want prompt", elapsed)
	}
	checkNoGoroutineLeak(t, base)
}

func TestHybridPreCancelledContext(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := circuitfold.DefaultOptions()
	opt.Context = ctx
	opt.Timeout = 0
	_, err := circuitfold.Hybrid(bigCircuit(), 8, opt)
	wantAborted(t, err, circuitfold.ErrCanceled)
	checkNoGoroutineLeak(t, base)
}

func TestHybridMidRunDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	opt := circuitfold.DefaultOptions()
	opt.Timeout = 0
	opt.Budget = circuitfold.Budget{Wall: time.Millisecond}
	_, err := circuitfold.Hybrid(bigCircuit(), 8, opt)
	wantAborted(t, err, circuitfold.ErrBudgetExceeded)
	checkNoGoroutineLeak(t, base)
}

func TestStructuralContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := circuitfold.DefaultOptions()
	opt.Context = ctx
	opt.Timeout = 0
	_, err := circuitfold.Structural(bigCircuit(), 8, opt)
	wantAborted(t, err, circuitfold.ErrCanceled)
}

func TestOptimizeContextCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := bigCircuit()
	out, err := circuitfold.OptimizeContext(ctx, g, circuitfold.DefaultSweepOptions())
	if !errors.Is(err, circuitfold.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// An interrupted sweep still yields a valid circuit.
	if out == nil || out.NumPIs() != g.NumPIs() || out.NumPOs() != g.NumPOs() {
		t.Fatalf("interrupted optimize returned an invalid circuit: %v", out)
	}
	checkNoGoroutineLeak(t, base)
}

func TestOptimizeBudgetDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	g := bigCircuit()
	out, err := circuitfold.OptimizeBudget(nil, g, circuitfold.DefaultSweepOptions(),
		circuitfold.Budget{Wall: time.Nanosecond})
	if !errors.Is(err, circuitfold.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if out == nil || out.NumPOs() != g.NumPOs() {
		t.Fatal("interrupted optimize returned an invalid circuit")
	}
	checkNoGoroutineLeak(t, base)
}

func TestFaultAbortsMidSweep(t *testing.T) {
	// An error-mode fault in a sweep worker must cut the sweep short
	// like an interrupt: typed error, valid partial circuit, no
	// goroutine left behind.
	base := runtime.NumGoroutine()
	fault.Activate(fault.NewPlan(map[string]fault.Rule{
		fault.PointSweepShard: {Mode: fault.Error},
	}))
	t.Cleanup(fault.Deactivate)
	g := bigCircuit()
	out, err := circuitfold.OptimizeBudget(nil, g, circuitfold.DefaultSweepOptions(), circuitfold.Budget{})
	fault.Deactivate()
	if !errors.Is(err, circuitfold.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if out == nil || out.NumPIs() != g.NumPIs() || out.NumPOs() != g.NumPOs() {
		t.Fatal("fault-aborted optimize must return a valid circuit")
	}
	// The merges proven before the fault must still be sound.
	if err := eqcheckCombEquiv(t, g, out); err != nil {
		t.Fatalf("fault-aborted optimize broke equivalence: %v", err)
	}
	checkNoGoroutineLeak(t, base)
}

// eqcheckCombEquiv spot-checks combinational equivalence on 64 random
// vectors via word-parallel simulation.
func eqcheckCombEquiv(t *testing.T, a, b *circuitfold.Circuit) error {
	t.Helper()
	in := make([][]bool, 64)
	for i := range in {
		row := make([]bool, a.NumPIs())
		for j := range row {
			row[j] = (i*31+j*17)%3 == 0
		}
		in[i] = row
	}
	for _, row := range in {
		av := a.Eval(row)
		bv := b.Eval(row)
		for k := range av {
			if av[k] != bv[k] {
				return fmt.Errorf("outputs differ on PO %d", k)
			}
		}
	}
	return nil
}

func TestFaultAbortsMidTFF(t *testing.T) {
	// A panic-mode fault deep in the BDD allocator, hit mid-way through
	// time-frame folding, must surface as ErrInternal with the partial
	// stage trace flushed and no goroutines leaked.
	base := runtime.NumGoroutine()
	fault.Activate(fault.NewPlan(map[string]fault.Rule{
		fault.PointBDDMk: {Mode: fault.Panic, After: 500},
	}))
	t.Cleanup(fault.Deactivate)
	opt := circuitfold.DefaultOptions()
	opt.Timeout = 0
	_, err := circuitfold.Functional(bigCircuit(), 8, opt)
	fault.Deactivate()
	if err == nil {
		t.Fatal("fold should have aborted on the injected panic")
	}
	if !errors.Is(err, circuitfold.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var pe *circuitfold.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PipelineError with partial trace", err, err)
	}
	if pe.Report == nil || len(pe.Report.Stages) == 0 {
		t.Fatal("fault-aborted fold must flush a partial stage trace")
	}
	checkNoGoroutineLeak(t, base)
}

func TestTraceAttachedWhenRequested(t *testing.T) {
	g := buildAdder3(t)
	opt := circuitfold.DefaultOptions()
	r, err := circuitfold.Functional(g, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report == nil || len(r.Report.Stages) == 0 {
		t.Fatal("Trace on: Result.Report must carry stages")
	}
	for _, name := range []string{"schedule", "tff", "minimize", "encode"} {
		if r.Report.Stage(name) == nil {
			t.Fatalf("missing stage %q in trace: %+v", name, r.Report.Stages)
		}
	}
	opt.Trace = false
	r, err = circuitfold.Functional(g, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report != nil {
		t.Fatal("Trace off: Result.Report must be nil")
	}
}
