package circuitfold

import (
	"context"
	"fmt"

	"circuitfold/internal/bdd"
	"circuitfold/internal/eqcheck"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/sat"
)

// Resilience sentinels, matched with errors.Is. They complement
// ErrBudgetExceeded and ErrCanceled:
//
//   - ErrInternal: a panic recovered at an engine boundary, or an
//     injected fault. ErrNodeLimit and ErrResourceLimit wrap
//     ErrBudgetExceeded, not ErrInternal — running out of a declared
//     budget is the instance's fault, not the engine's.
//   - ErrSelfCheck: a fold completed but failed the post-fold
//     equivalence self-check and was discarded.
//   - ErrNodeLimit: the BDD manager exceeded its hard node cap.
//   - ErrResourceLimit: the SAT solver exceeded its hard conflict or
//     learnt-clause cap.
var (
	ErrInternal      = pipeline.ErrInternal
	ErrSelfCheck     = pipeline.ErrSelfCheck
	ErrNodeLimit     = bdd.ErrNodeLimit
	ErrResourceLimit = sat.ErrResourceLimit
)

// InternalError is the typed form of a recovered panic: the entry point
// or stage where it was caught, the panic value, and the stack. Extract
// it with errors.As; it matches ErrInternal via errors.Is.
type InternalError = pipeline.InternalError

// FoldMethod names one rung of the degradation ladder.
type FoldMethod string

// Ladder rungs. MethodFunctionalReorder is the functional method with
// the Reorder option flipped — a second chance when BDD variable order
// was what sank the first functional attempt.
const (
	MethodFunctional        FoldMethod = "functional"
	MethodFunctionalReorder FoldMethod = "functional-reorder"
	MethodHybrid            FoldMethod = "hybrid"
	MethodStructural        FoldMethod = "structural"
)

// RungReport records how one rung of a resilient fold went: its name,
// duration, error (empty on the winning rung), self-check outcome, and
// the partial stage trace salvaged from a failed attempt.
type RungReport = pipeline.RungReport

// ResilientOptions configures RunResilient. The embedded Options apply
// to every rung; the zero value gets the default ladder (functional,
// hybrid, structural) and a 64-vector random-simulation self-check.
type ResilientOptions struct {
	Options

	// Ladder lists the methods to attempt in order. Empty means
	// functional, hybrid, structural.
	Ladder []FoldMethod

	// RungBudgets overrides the fold Budget per rung; a method not in
	// the map uses the embedded Options' budget. This bounds expensive
	// early rungs tightly while leaving the structural safety net
	// unconstrained.
	RungBudgets map[FoldMethod]Budget

	// RetryReorder inserts a functional-reorder rung after each
	// functional rung (with the Reorder option flipped), retrying with
	// a different BDD variable order before degrading to hybrid.
	RetryReorder bool

	// SelfCheckRounds is the number of 64-vector word-parallel random
	// simulation rounds gating each successful fold. 0 means 1 round
	// (64 vectors); negative disables the simulation check.
	SelfCheckRounds int

	// SelfCheckSAT, when positive, escalates the self-check to a SAT
	// equivalence spot-check of the unrolled fold under this conflict
	// budget. An inconclusive (budget-limited) check passes; only a
	// counterexample fails the fold.
	SelfCheckSAT int64
}

// ResilientResult is a verified fold plus the story of how the ladder
// got there.
type ResilientResult struct {
	*Result

	// Method is the rung that produced the result.
	Method FoldMethod

	// Attempts reports every rung tried, in order, including the
	// winning one.
	Attempts []RungReport

	// Fallbacks is how many rung descents this fold took (0 when the
	// first rung won).
	Fallbacks int64

	// PanicsRecovered is how many panics were converted to ErrInternal
	// at recover boundaries during this fold.
	PanicsRecovered int64

	// SelfCheckFails is how many completed folds the self-check
	// discarded during this fold.
	SelfCheckFails int64
}

// defaultLadder is the full degradation sequence: smallest circuits
// first, most scalable last.
var defaultLadder = []FoldMethod{MethodFunctional, MethodHybrid, MethodStructural}

// RunResilient folds g by T frames, walking a degradation ladder until
// a rung produces a self-check-verified result. A rung that exhausts
// its budget (ErrBudgetExceeded, including the hard ErrNodeLimit and
// ErrResourceLimit caps), panics (recovered into ErrInternal), or fails
// the equivalence self-check (ErrSelfCheck) falls through to the next
// rung; cancellation (ErrCanceled) and instance errors (bad T, no
// inputs) abort immediately. When every rung fails, the last rung's
// error is returned and Attempts in the trace still records each rung.
//
// Every successful fold is gated by a bounded self-check — 64-way
// random simulation of the fold against the original circuit,
// optionally escalated to a SAT spot-check (SelfCheckSAT) — so a
// returned ResilientResult is never an unverified artifact of a
// partially-failed engine.
func RunResilient(g *Circuit, T int, opt ResilientOptions) (*ResilientResult, error) {
	// Counters must be readable afterwards, so ensure a Metrics
	// registry exists even when the caller did not ask for one.
	o := opt.Observer
	if o == nil {
		o = &Observer{}
	}
	if o.Metrics == nil {
		oo := *o
		oo.Metrics = NewMetrics()
		o = &oo
	}
	opt.Observer = o

	ladder := opt.Ladder
	if len(ladder) == 0 {
		ladder = defaultLadder
	}
	if opt.RetryReorder {
		expanded := make([]FoldMethod, 0, len(ladder)+1)
		for _, m := range ladder {
			expanded = append(expanded, m)
			if m == MethodFunctional {
				expanded = append(expanded, MethodFunctionalReorder)
			}
		}
		ladder = expanded
	}

	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}

	fallbacks0 := o.Counter(obs.MFoldFallbacks).Value()
	panics0 := o.Counter(obs.MFoldPanics).Value()
	selfFails0 := o.Counter(obs.MFoldSelfCheck).Value()

	rungs := make([]pipeline.Rung, len(ladder))
	for i, m := range ladder {
		method := m
		ro := opt.Options
		ro.Observer = o
		// Each rung checkpoints under its own namespace: a resumed
		// resilient fold re-enters the same rung's pipeline at the last
		// completed stage without reading another method's snapshots.
		ro.Checkpoint = PrefixCheckpoint(opt.Checkpoint, string(method))
		if b, ok := opt.RungBudgets[method]; ok {
			ro.Budget = b
			ro.Timeout = 0
		}
		rungs[i] = pipeline.Rung{
			Name:   string(method),
			Budget: ro.budget(),
			Attempt: func(*pipeline.Run) (any, error) {
				r, err := foldByMethod(g, T, method, ro)
				if err != nil {
					return nil, err
				}
				return r, nil
			},
			Verify: func(v any, run *pipeline.Run) error {
				return selfCheck(g, v.(*Result), opt, run)
			},
		}
	}

	v, attempts, err := pipeline.RunResilient(ctx, o, rungs)
	rr := &ResilientResult{
		Attempts:        attempts,
		Fallbacks:       o.Counter(obs.MFoldFallbacks).Value() - fallbacks0,
		PanicsRecovered: o.Counter(obs.MFoldPanics).Value() - panics0,
		SelfCheckFails:  o.Counter(obs.MFoldSelfCheck).Value() - selfFails0,
	}
	if err != nil {
		return rr, err
	}
	rr.Result = v.(*Result)
	rr.Method = FoldMethod(attempts[len(attempts)-1].Rung)
	if !opt.Trace {
		rr.Result.Report = nil
	}
	return rr, nil
}

// foldByMethod dispatches one rung to its engine.
func foldByMethod(g *Circuit, T int, m FoldMethod, opt Options) (*Result, error) {
	switch m {
	case MethodFunctional:
		return Functional(g, T, opt)
	case MethodFunctionalReorder:
		opt.Reorder = !opt.Reorder
		return Functional(g, T, opt)
	case MethodHybrid:
		return Hybrid(g, T, opt)
	case MethodStructural:
		return Structural(g, T, opt)
	}
	return nil, fmt.Errorf("circuitfold: unknown fold method %q", m)
}

// selfCheck gates a completed fold: bounded random simulation first,
// then an optional SAT equivalence spot-check of the unrolled fold.
func selfCheck(g *Circuit, r *Result, opt ResilientOptions, run *pipeline.Run) error {
	rounds := opt.SelfCheckRounds
	if rounds == 0 {
		rounds = 1
	}
	if rounds > 0 {
		// Fixed seed: a self-check must be reproducible to debug.
		if err := eqcheck.VerifyFoldWords(g, r, rounds, 0x5eed); err != nil {
			return err
		}
	}
	if opt.SelfCheckSAT > 0 {
		status, err := eqcheck.SATCheckFold(g, r, opt.SelfCheckSAT, run.Check)
		if err != nil {
			return err
		}
		if status == sat.Sat {
			return fmt.Errorf("circuitfold: SAT spot-check found a counterexample")
		}
		// Unknown: the budget ran out before a verdict; the simulation
		// check already passed, so treat as inconclusive-but-accepted.
	}
	return nil
}
