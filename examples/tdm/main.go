// TDM: emulation-board I/O planning. Two FPGAs exchange signals over a
// narrow link; classic time-division multiplexing (Figure 1) raises the
// effective pin count by slowing the system clock, while circuit folding
// lowers the demanded pin count at the logic level. This example shows
// the TDM transmission schedule, then reproduces the paper's i10 latency
// analysis: folding saves an I/O cycle where TDM alone cannot.
package main

import (
	"fmt"
	"log"

	"circuitfold"
	"circuitfold/internal/exp"
	"circuitfold/internal/tdm"
)

func main() {
	// --- Figure 1: a TDM link with ratio 4 -------------------------------
	link := circuitfold.Link{Pins: 2, Ratio: 4}
	fmt.Printf("TDM link: %d pins at ratio %d -> %d logical signals per system clock\n",
		link.Pins, link.Ratio, link.SignalsPerSystemCycle())
	fmt.Println("transmission schedule for 8 signals (signal index per pin per I/O cycle):")
	for c, row := range link.TransmitSchedule(8) {
		fmt.Printf("  I/O cycle %d: %v\n", c+1, row)
	}
	fmt.Println("the system clock runs 4x slower; TDM trades throughput for pins.")

	// --- Section VI: the i10 case study ----------------------------------
	fmt.Println("\ni10 latency case study (200 bits/cycle, TDM ratio 1):")
	g, err := circuitfold.Benchmark("i10")
	if err != nil {
		log.Fatal(err)
	}
	unfolded := circuitfold.UnfoldedIOCycles(g.NumPIs(), g.NumPOs(), exp.PinLimit)
	fmt.Printf("  without folding: %d I/O cycles (257 in + 224 out over 200-pin link)\n", unfolded)

	r, err := circuitfold.Structural(g, 2, circuitfold.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cycles, plan, err := tdm.FoldedCycles(r, exp.PinLimit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  folded by T=2 (%d in / %d out pins): %d I/O cycles\n",
		r.InputPins(), r.OutputPins(), cycles)
	for i, p := range plan {
		fmt.Printf("    cycle %d: %3d inputs + %3d outputs\n", i+1, p.Inputs, p.Outputs)
	}
	fmt.Printf("  reduction: %.0f%% — folding overlaps early outputs with late inputs\n",
		tdm.Reduction(unfolded, cycles)*100)

	// Folding and TDM compose: fold first, then multiplex the folded pins.
	folded := circuitfold.Link{Pins: 50, Ratio: 4}
	fmt.Printf("\ncomposed: the folded 129-pin interface fits a %d-pin link at TDM ratio %d (%d signals/cycle)\n",
		folded.Pins, folded.Ratio, folded.SignalsPerSystemCycle())

	// --- Multi-FPGA partitioning (the paper's introduction) --------------
	// When a design is split across two FPGAs, the cut nets become
	// inter-chip signals; the required TDM ratio follows from the pin
	// budget.
	big, err := circuitfold.Benchmark("b14_C")
	if err != nil {
		log.Fatal(err)
	}
	cut, _, err := circuitfold.Partition(big, circuitfold.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pins := 64
	ratio := (cut + pins - 1) / pins
	fmt.Printf("\nmulti-FPGA: FM bipartition of b14_C cuts %d nets;\n", cut)
	fmt.Printf("  over a %d-pin link that needs TDM ratio %d (system clock %dx slower),\n",
		pins, ratio, ratio)
	fmt.Println("  which is the physical-level cost that logic-level folding sidesteps.")
}
