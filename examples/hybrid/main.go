// Hybrid: the paper's conclusion names combining the structural and
// functional methods as future work — this example runs that combination
// on i3 (six disjoint output cones, the ideal clustering case) and
// compares all three engines on the same pin budget.
package main

import (
	"fmt"
	"log"
	"time"

	"circuitfold"
)

func lut6(g *circuitfold.Circuit) int {
	n, err := circuitfold.LUTCount(g, 6)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func main() {
	g, err := circuitfold.Benchmark("i3")
	if err != nil {
		log.Fatal(err)
	}
	const T = 4
	fmt.Printf("i3: %d inputs, %d outputs, %d AIG nodes; folding by T=%d\n\n",
		g.NumPIs(), g.NumPOs(), g.NumAnds(), T)

	type row struct {
		name string
		r    *circuitfold.Result
		d    time.Duration
	}
	var rows []row

	run := func(name string, f func() (*circuitfold.Result, error)) {
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Printf("%-12s %v\n", name, err)
			return
		}
		d := time.Since(start)
		if err := circuitfold.Verify(g, r, 128); err != nil {
			log.Fatalf("%s: fold incorrect: %v", name, err)
		}
		rows = append(rows, row{name, r, d})
	}

	opt := circuitfold.DefaultOptions()
	opt.Timeout = 2 * time.Second
	run("structural", func() (*circuitfold.Result, error) {
		return circuitfold.Structural(g, T, opt)
	})
	run("functional", func() (*circuitfold.Result, error) {
		return circuitfold.Functional(g, T, opt)
	})
	run("hybrid", func() (*circuitfold.Result, error) {
		return circuitfold.Hybrid(g, T, opt)
	})

	fmt.Printf("%-12s %6s %6s %6s %8s %8s %10s\n",
		"method", "#in", "#out", "#FF", "#gate", "#LUT", "runtime")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %6d %6d %8d %8d %10v\n",
			r.name, r.r.InputPins(), r.r.OutputPins(), r.r.FlipFlops(),
			r.r.Gates(), lut6(r.r.Seq.G),
			r.d.Round(time.Millisecond))
	}
	fmt.Println("\nall folds verified on 128 random vectors;")
	fmt.Println("the hybrid folds tractable output clusters functionally and")
	fmt.Println("falls back to the structural method for the rest, sharing one")
	fmt.Println("pin interface — the best of both where the circuit allows it.")
}
