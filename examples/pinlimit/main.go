// Pinlimit: the paper's motivating scenario. A design must fit an FPGA
// with only 200 user I/O pins, but several benchmark circuits need far
// more. This example folds each one by the smallest T that satisfies the
// pin budget (Table II's setup), compares the structural method against
// the simple input-buffering baseline, and verifies the folds.
package main

import (
	"fmt"
	"log"

	"circuitfold"
)

const pinLimit = 200

func lut6(g *circuitfold.Circuit) int {
	n, err := circuitfold.LUTCount(g, 6)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func main() {
	circuits := []string{"128-adder", "C7552", "des", "i10", "max"}

	fmt.Printf("folding to meet a %d-pin FPGA budget:\n\n", pinLimit)
	fmt.Printf("%-10s %5s %5s | %22s | %22s\n", "", "", "",
		"structural (Sec. IV)", "simple baseline")
	fmt.Printf("%-10s %5s %5s | %6s %7s %7s | %6s %7s %7s\n",
		"circuit", "#pins", "T", "#in", "#FF", "#LUT", "#in", "#FF", "#LUT")

	for _, name := range circuits {
		g, err := circuitfold.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		n := g.NumPIs()
		T := (n + pinLimit - 1) / pinLimit

		sr, err := circuitfold.Structural(g, T, circuitfold.Options{})
		if err != nil {
			log.Fatal(err)
		}
		br, err := circuitfold.Simple(g, T)
		if err != nil {
			log.Fatal(err)
		}
		// Folding is only useful if it is correct: check both against the
		// original circuit on random vectors.
		if err := circuitfold.Verify(g, sr, 64); err != nil {
			log.Fatalf("%s structural: %v", name, err)
		}
		if err := circuitfold.Verify(g, br, 64); err != nil {
			log.Fatalf("%s simple: %v", name, err)
		}

		fmt.Printf("%-10s %5d %5d | %6d %7d %7d | %6d %7d %7d\n",
			name, n, T,
			sr.InputPins(), sr.FlipFlops(), lut6(sr.Seq.G),
			br.InputPins(), br.FlipFlops(), lut6(br.Seq.G))
	}

	fmt.Println("\nevery fold meets the pin budget and was verified on 64 random vectors")
	fmt.Println("(the structural method needs fewer flip-flops than buffering all early inputs,")
	fmt.Println("and can also reduce output pins by spreading outputs across frames)")
}
