// Quickstart: fold the paper's adder3 running example both ways and walk
// through Examples 1-3 of the paper — the structural fold's layered
// registers, the pin schedule, and the functional fold's FSM that
// minimizes to a carry-save adder.
package main

import (
	"fmt"
	"log"

	"circuitfold"
)

func main() {
	// Build the 3-bit ripple adder of Fig. 4 with interleaved inputs
	// a0,b0,a1,b1,a2,b2 and outputs s0,s1,s2,cout.
	g := circuitfold.NewCircuit()
	var a, b [3]circuitfold.Lit
	for i := 0; i < 3; i++ {
		a[i] = g.PI(fmt.Sprintf("a%d", i))
		b[i] = g.PI(fmt.Sprintf("b%d", i))
	}
	carry := circuitfold.Const0
	for i := 0; i < 3; i++ {
		g.AddPO(g.Xor(g.Xor(a[i], b[i]), carry), fmt.Sprintf("s%d", i))
		carry = g.Or(g.And(a[i], b[i]), g.And(carry, g.Xor(a[i], b[i])))
	}
	g.AddPO(carry, "cout")
	fmt.Printf("adder3: %d inputs, %d outputs, %d AIG nodes\n\n",
		g.NumPIs(), g.NumPOs(), g.NumAnds())

	// --- Example 1: structural folding by T=3 ---------------------------
	sr, err := circuitfold.Structural(g, 3, circuitfold.Options{Counter: circuitfold.OneHot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("structural fold (T=3, one-hot frame counter):")
	fmt.Printf("  %d input pins, %d output pins, %d flip-flops (paper: 2/2/5)\n",
		sr.InputPins(), sr.OutputPins(), sr.FlipFlops())

	// --- Example 2: the pin schedule ------------------------------------
	fmt.Println("  output schedule:")
	for t := 0; t < sr.T; t++ {
		fmt.Printf("    frame %d: Y = %v (PO indices, -1 = null)\n", t+1, sr.OutSched[t])
	}

	// --- Example 3: functional folding and state minimization -----------
	fr, err := circuitfold.Functional(g, 3, circuitfold.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfunctional fold (T=3):")
	fmt.Printf("  FSM: %d states, minimized to %d (paper Fig. 6: 6 -> 2, a carry-save adder)\n",
		fr.States, fr.StatesMin)
	fmt.Printf("  %d input pins, %d output pins, %d flip-flops\n",
		fr.InputPins(), fr.OutputPins(), fr.FlipFlops())

	// --- Run one folded computation: 5 + 6 ------------------------------
	in := []bool{
		true, false, // a0=1 b0=0
		false, true, // a1=0 b1=1
		true, true, //  a2=1 b2=1
	}
	fmt.Println("\nexecuting 5 + 6 over 3 frames on the functional fold:")
	for t, frame := range fr.ScheduleInputs(in) {
		fmt.Printf("  cycle %d inputs on pins: %v\n", t+1, frame)
	}
	out := fr.Execute(in)
	val := 0
	for i := 0; i < 4; i++ {
		if out[i] {
			val |= 1 << i
		}
	}
	fmt.Printf("  result: s=%v cout=%v -> %d (want 11)\n", out[:3], out[3], val)

	// Both folds are formally checked against the original circuit.
	if err := circuitfold.Verify(g, sr, 0); err != nil {
		log.Fatal("structural verify failed: ", err)
	}
	if err := circuitfold.Verify(g, fr, 0); err != nil {
		log.Fatal("functional verify failed: ", err)
	}
	fmt.Println("\nboth folds verified exhaustively against adder3")
}
