// Fsmflow: the paper's Section V toolchain, step by step. A circuit is
// folded into an FSM by time-frame folding, exported in KISS2 (the
// format MeMin consumes), minimized exactly, rendered as a Figure-6
// style state diagram, and finally encoded back into logic — the full
// functional-folding pipeline with every intermediate visible.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"circuitfold"
	"circuitfold/internal/core"
	"circuitfold/internal/fsm"
)

func lut6(g *circuitfold.Circuit) int {
	n, err := circuitfold.LUTCount(g, 6)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func main() {
	// The paper's running example: the 3-bit adder of Fig. 4.
	g, err := circuitfold.Benchmark("adder3")
	if err != nil {
		log.Fatal(err)
	}

	// Pin scheduling (Algorithms 1 and 2) + time-frame folding.
	sched, err := core.PinSchedule(g, 3, core.ScheduleOptions{Reorder: true})
	if err != nil {
		log.Fatal(err)
	}
	machine, states, err := core.TimeFrameFold(g, sched, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-frame folding: %d states (paper Fig. 6a: 6, incl. the don't-care state)\n\n", states)

	// Export the incompletely specified machine in KISS2.
	var kiss strings.Builder
	if err := fsm.WriteKISS(&kiss, machine); err != nil {
		log.Fatal(err)
	}
	fmt.Println("KISS2 export (MeMin's input format):")
	fmt.Println(kiss.String())

	// Exact state minimization (MeMin).
	minimized, err := fsm.Minimize(machine, fsm.DefaultMinimizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MeMin: %d -> %d states (paper Fig. 6b: 2, a carry-save adder)\n\n",
		machine.NumStates(), minimized.NumStates())

	// Figure-6 style state diagram.
	fmt.Println("state diagram (Graphviz DOT):")
	if err := fsm.WriteDOT(os.Stdout, minimized, "csa"); err != nil {
		log.Fatal(err)
	}

	// Encode with both state assignments and compare the logic.
	for _, enc := range []fsm.StateEncoding{fsm.NaturalBinary, fsm.OneHotState} {
		c, err := fsm.Encode(minimized, enc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s encoding: %d flip-flops, %d AIG nodes, %d 6-LUTs\n",
			enc, c.NumLatches(), c.G.NumAnds(), lut6(c.G))
	}
}
