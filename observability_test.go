package circuitfold

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// eventKey indexes collected trace events by (name, category).
type eventKey struct{ name, cat string }

func eventIndex(events []TraceEvent) map[eventKey]int {
	idx := make(map[eventKey]int)
	for _, e := range events {
		idx[eventKey{e.Name, e.Cat}]++
	}
	return idx
}

// TestObservedFunctionalFold runs the paper's 64-adder (a Table III
// circuit) through the functional method with an Observer attached and
// checks the whole observability surface: nested stage spans, the
// sub-stage span types from the bdd/sat/fsm/core layers, the Report's
// span and BDD-node counters, and the metrics registry.
func TestObservedFunctionalFold(t *testing.T) {
	g, err := Benchmark("64-adder")
	if err != nil {
		t.Fatal(err)
	}
	buf := NewTraceBuffer()
	reg := NewMetrics()
	opt := DefaultOptions()
	opt.Timeout = 2 * time.Minute
	opt.Observer = &Observer{Tracer: NewTracer(buf), Metrics: reg}
	r, err := Functional(g, 16, opt)
	if err != nil {
		t.Fatal(err)
	}

	idx := eventIndex(buf.Events())
	for _, want := range []eventKey{
		{"functional", "pipeline"},
		{"schedule", "stage"},
		{"tff", "stage"},
		{"minimize", "stage"},
		{"encode", "stage"},
		{"bdd.sift", "bdd"},
		{"tff.frame", "core"},
		{"memin.iter", "fsm"},
		{"sat.solve", "sat"},
	} {
		if idx[want] == 0 {
			t.Errorf("trace missing span %v (have %v)", want, idx)
		}
	}
	if got := idx[eventKey{"tff.frame", "core"}]; got != 16 {
		t.Errorf("got %d tff.frame spans, want 16", got)
	}

	// The per-stage counters the spans feed.
	if r.Report == nil {
		t.Fatal("no report")
	}
	for _, name := range []string{"schedule", "tff"} {
		ss := r.Report.Stage(name)
		if ss == nil {
			t.Fatalf("stage %s missing from report", name)
		}
		if ss.BDDNodes <= 0 {
			t.Errorf("stage %s BDDNodes = %d, want > 0", name, ss.BDDNodes)
		}
		if ss.Spans <= 0 {
			t.Errorf("stage %s Spans = %d, want > 0", name, ss.Spans)
		}
	}

	if peak := reg.Gauge(obs.MBDDLiveNodes).Peak(); peak <= 0 {
		t.Errorf("bdd.live_nodes peak = %d, want > 0", peak)
	}
	if peak := reg.Gauge(obs.MFSMStates).Peak(); int(peak) != r.States {
		t.Errorf("fsm.states peak = %d, want %d", peak, r.States)
	}
	if swaps := reg.Counter(obs.MBDDReorderSwaps).Value(); swaps <= 0 {
		t.Errorf("bdd.reorder_swaps = %d, want > 0", swaps)
	}

	// The buffer must serialize as a loadable Chrome trace.
	var out bytes.Buffer
	if err := buf.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != buf.Len() {
		t.Fatalf("serialized %d events, buffered %d", len(doc.TraceEvents), buf.Len())
	}
}

// TestObservedSweepRounds attaches a span and registry to the SAT
// sweeping engine directly and checks the sweep.round sub-stage spans
// and the sweep metrics. The circuit hides a redundancy strashing
// cannot see (or(ab, a¬b) ≡ a), so the sweep provably merges.
func TestObservedSweepRounds(t *testing.T) {
	g := NewCircuit()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(a, "y0")
	g.AddPO(g.OrN(g.And(a, b), g.And(a, b.Not())), "y1")

	buf := NewTraceBuffer()
	reg := NewMetrics()
	root := NewTracer(buf).Start("optimize", "test")
	so := DefaultSweepOptions()
	so.Span = root
	so.Metrics = reg
	so.Stage = "sweep"
	out := OptimizeWith(g, so)
	root.End()

	if out.NumAnds() != 0 {
		t.Errorf("sweep left %d ANDs, want 0", out.NumAnds())
	}
	idx := eventIndex(buf.Events())
	if idx[eventKey{"sweep.round", "aig"}] == 0 {
		t.Errorf("no sweep.round spans: %v", idx)
	}
	if merges := reg.Counter(obs.MSweepMerges).Value(); merges <= 0 {
		t.Errorf("sweep.merges = %d, want > 0", merges)
	}
	if calls := reg.Counter(obs.MSweepSATCalls).Value(); calls <= 0 {
		t.Errorf("sweep.sat_calls = %d, want > 0", calls)
	}
}

// TestBudgetAbortFlushesPartialTrace aborts a fold on its state budget
// and checks the sink still received the root and stage spans — the
// partial trace an engineer debugs a blown budget with.
func TestBudgetAbortFlushesPartialTrace(t *testing.T) {
	g, err := Benchmark("64-adder")
	if err != nil {
		t.Fatal(err)
	}
	buf := NewTraceBuffer()
	opt := DefaultOptions()
	opt.Timeout = 0
	opt.Budget = Budget{MaxStates: 4}
	opt.Observer = &Observer{Tracer: NewTracer(buf)}
	_, err = Functional(g, 16, opt)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	var sawRoot, sawTFF bool
	for _, e := range buf.Events() {
		if e.Name == "functional" && e.Cat == "pipeline" {
			sawRoot = true
			if e.Args["err"] == nil {
				t.Error("aborted pipeline span missing err attribute")
			}
		}
		if e.Name == "tff" && e.Cat == "stage" {
			sawTFF = true
		}
	}
	if !sawRoot || !sawTFF {
		t.Fatalf("partial trace missing root/stage spans (root=%v tff=%v, %d events)",
			sawRoot, sawTFF, buf.Len())
	}
}

// TestNilObserverZeroAlloc asserts the zero-overhead contract at the
// engine boundary: with no Observer installed, the instrumentation hooks
// the fold engines call (run spans, BDD-node notes, metric resolution)
// allocate nothing.
func TestNilObserverZeroAlloc(t *testing.T) {
	run := pipeline.NewRun(context.Background(), Budget{})
	allocs := testing.AllocsPerRun(200, func() {
		sp := run.Span()
		c := sp.Child("sub", "cat")
		c.SetInt("k", 1)
		c.End()
		run.NoteBDDNodes(12345)
		run.Metrics().Counter(obs.MSATDecisions).Add(1)
		run.Metrics().Gauge(obs.MFSMStates).Set(7)
		run.Observer().Span("root", "cat").End()
	})
	if allocs != 0 {
		t.Fatalf("unobserved run allocated %.1f bytes/op in the hook path, want 0", allocs)
	}
}
