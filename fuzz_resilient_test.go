package circuitfold_test

import (
	"errors"
	"testing"
	"time"

	"circuitfold"
	"circuitfold/internal/fault"
	"circuitfold/internal/gen"
)

// FuzzFoldResilient drives random small circuits through the
// degradation ladder under seed-derived fault plans and budgets. The
// contract under test: RunResilient either returns a self-check-passing
// fold or a typed error — it never panics and never returns an
// unverified result.
func FuzzFoldResilient(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(2), false)
	f.Add(uint64(2), uint8(12), uint8(3), true)
	f.Add(uint64(42), uint8(6), uint8(6), true)
	f.Add(uint64(1234), uint8(16), uint8(4), false)
	f.Add(uint64(99), uint8(9), uint8(1), true)

	f.Fuzz(func(t *testing.T, seed uint64, pis, T uint8, inject bool) {
		nIn := 2 + int(pis)%24
		TT := 1 + int(T)%nIn
		g := gen.Random(seed, nIn, 1+int(seed%8), 50+int(seed%400))

		if inject {
			fault.Activate(fault.PlanFromSeed(seed))
			defer fault.Deactivate()
		}

		opt := circuitfold.ResilientOptions{}
		opt.Budget = circuitfold.Budget{Wall: 5 * time.Second}
		if seed%3 == 0 {
			// A starved first rung exercises the descent paths.
			opt.RungBudgets = map[circuitfold.FoldMethod]circuitfold.Budget{
				circuitfold.MethodFunctional: {BDDNodes: 32 + int(seed%512)},
			}
		}

		r, err := circuitfold.RunResilient(g, TT, opt)
		if err != nil {
			known := errors.Is(err, circuitfold.ErrBudgetExceeded) ||
				errors.Is(err, circuitfold.ErrCanceled) ||
				errors.Is(err, circuitfold.ErrInternal) ||
				errors.Is(err, circuitfold.ErrSelfCheck)
			if !known {
				t.Fatalf("untyped failure: %v", err)
			}
			return
		}
		fault.Deactivate() // re-verify without injection noise
		if r.Result == nil {
			t.Fatal("nil error with nil result")
		}
		if err := circuitfold.VerifyFast(g, r.Result, 2); err != nil {
			t.Fatalf("fold by %s failed re-verification: %v", r.Method, err)
		}
	})
}
