package circuitfold_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"circuitfold"
	"circuitfold/internal/bdd"
	"circuitfold/internal/fault"
	"circuitfold/internal/gen"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/sat"
)

// arm installs a fault plan for the test and guarantees disarmament.
// Fault plans are process-global, so armed tests must not run in
// parallel.
func arm(t *testing.T, rules map[string]fault.Rule) {
	t.Helper()
	fault.Activate(fault.NewPlan(rules))
	t.Cleanup(fault.Deactivate)
}

// TestFaultMatrix proves the recover boundaries: a panic injected at
// every registered fault point surfaces as a typed error matching both
// ErrInternal and fault.ErrInjected — never as a process panic.
func TestFaultMatrix(t *testing.T) {
	small := func() *circuitfold.Circuit { return gen.Random(11, 12, 6, 300) }
	cases := []struct {
		point string
		run   func() error
	}{
		{fault.PointBDDMk, func() error {
			_, err := circuitfold.Functional(small(), 3, circuitfold.Options{})
			return err
		}},
		{fault.PointSATSolve, func() error {
			opt := circuitfold.Options{Minimize: true}
			_, err := circuitfold.Functional(small(), 3, opt)
			return err
		}},
		{fault.PointSweepShard, func() error {
			_, err := circuitfold.OptimizeBudget(nil, gen.Random(7, 64, 16, 4000),
				circuitfold.DefaultSweepOptions(), circuitfold.Budget{})
			return err
		}},
		{fault.PointMeMinIter, func() error {
			opt := circuitfold.Options{Minimize: true}
			_, err := circuitfold.Functional(small(), 3, opt)
			return err
		}},
		{fault.PointTFFFrameWorker, func() error {
			// Workers: 4 exercises the parallel frame pool: the panic
			// must drain the pool and surface, not deadlock it.
			_, err := circuitfold.Functional(small(), 3, circuitfold.Options{Workers: 4})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			arm(t, map[string]fault.Rule{tc.point: {Mode: fault.Panic}})
			err := tc.run()
			if err == nil {
				t.Fatalf("injected panic at %s did not surface", tc.point)
			}
			if !errors.Is(err, circuitfold.ErrInternal) {
				t.Fatalf("err = %v, want ErrInternal", err)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("err = %v, want fault.ErrInjected", err)
			}
		})
	}
}

// TestErrorTaxonomy checks that every failure-mode sentinel is
// matchable with errors.Is from the root package, end to end.
func TestErrorTaxonomy(t *testing.T) {
	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := circuitfold.Functional(bigCircuit(), 8, circuitfold.Options{Context: ctx})
		if !errors.Is(err, circuitfold.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	})
	t.Run("budget", func(t *testing.T) {
		opt := circuitfold.Options{Budget: circuitfold.Budget{Wall: time.Millisecond}}
		_, err := circuitfold.Functional(bigCircuit(), 8, opt)
		if !errors.Is(err, circuitfold.ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
	})
	t.Run("node-limit", func(t *testing.T) {
		// The hard cap panics out of the BDD manager (the CUDD-style
		// non-local exit); a recover boundary converts it into an error
		// that matches both the specific and the general sentinel.
		m := bdd.New(64)
		m.SetNodeLimit(8)
		err := func() (err error) {
			defer pipeline.RecoverTo(&err, "test.bdd")
			f := m.Var(0)
			for v := 1; v < 64; v++ {
				f = m.Xor(f, m.Var(v))
			}
			return nil
		}()
		if !errors.Is(err, circuitfold.ErrNodeLimit) {
			t.Fatalf("err = %v, want ErrNodeLimit", err)
		}
		if !errors.Is(err, circuitfold.ErrBudgetExceeded) {
			t.Fatal("ErrNodeLimit must classify as a budget failure")
		}
		if errors.Is(err, circuitfold.ErrInternal) {
			t.Fatal("a declared node cap is not an internal error")
		}
	})
	t.Run("resource-limit", func(t *testing.T) {
		// Pigeonhole PHP(6,5): hard enough to conflict immediately, so
		// a two-conflict hard cap trips and Solve degrades to Unknown
		// with the typed cause.
		const holes = 5
		const pigeons = 6
		s := sat.New()
		v := func(p, h int) int { return p*holes + h }
		for i := 0; i < pigeons*holes; i++ {
			s.NewVar()
		}
		for p := 0; p < pigeons; p++ {
			cl := make([]sat.Lit, holes)
			for h := 0; h < holes; h++ {
				cl[h] = sat.MkLit(v(p, h), false)
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(sat.MkLit(v(p1, h), true), sat.MkLit(v(p2, h), true))
				}
			}
		}
		s.SetResourceLimit(2, 0)
		if st := s.Solve(); st != sat.Unknown {
			t.Fatalf("Solve = %v, want Unknown under a 2-conflict cap", st)
		}
		err := s.ResourceErr()
		if !errors.Is(err, circuitfold.ErrResourceLimit) {
			t.Fatalf("ResourceErr = %v, want ErrResourceLimit", err)
		}
		if !errors.Is(err, circuitfold.ErrBudgetExceeded) {
			t.Fatal("ErrResourceLimit must classify as a budget failure")
		}
	})
	t.Run("internal", func(t *testing.T) {
		arm(t, map[string]fault.Rule{fault.PointBDDMk: {Mode: fault.Panic}})
		_, err := circuitfold.Functional(gen.Random(3, 9, 4, 200), 3, circuitfold.Options{})
		if !errors.Is(err, circuitfold.ErrInternal) {
			t.Fatalf("err = %v, want ErrInternal", err)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("err = %v, want fault.ErrInjected", err)
		}
	})
	t.Run("internal-panic-value", func(t *testing.T) {
		// A non-error panic (a real bug, not an injected error value)
		// becomes a typed *InternalError carrying stage and stack.
		err := func() (err error) {
			defer pipeline.RecoverTo(&err, "test.stage")
			panic("boom")
		}()
		var ie *circuitfold.InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("err = %T (%v), want *InternalError", err, err)
		}
		if ie.Stage != "test.stage" || len(ie.Stack) == 0 {
			t.Fatalf("InternalError must carry stage and stack, got %q", ie.Stage)
		}
		if !errors.Is(err, circuitfold.ErrInternal) {
			t.Fatal("InternalError must match ErrInternal")
		}
	})
}

// TestResilientLadderDescends forces the first two rungs to fail on
// budget and checks the ladder lands on a verified structural fold.
func TestResilientLadderDescends(t *testing.T) {
	o := &circuitfold.Observer{Metrics: circuitfold.NewMetrics()}
	opt := circuitfold.ResilientOptions{}
	opt.Observer = o
	opt.Trace = true
	opt.RungBudgets = map[circuitfold.FoldMethod]circuitfold.Budget{
		circuitfold.MethodFunctional: {BDDNodes: 64},
		circuitfold.MethodHybrid:     {Wall: time.Millisecond},
	}
	g := bigCircuit()
	r, err := circuitfold.RunResilient(g, 8, opt)
	if err != nil {
		t.Fatalf("ladder should have ended on structural: %v", err)
	}
	if r.Method != circuitfold.MethodStructural {
		t.Fatalf("Method = %s, want structural", r.Method)
	}
	if len(r.Attempts) != 3 {
		t.Fatalf("Attempts = %d, want 3", len(r.Attempts))
	}
	if r.Fallbacks != 2 {
		t.Fatalf("Fallbacks = %d, want 2", r.Fallbacks)
	}
	for _, a := range r.Attempts[:2] {
		if a.Err == "" {
			t.Fatalf("failed rung %s must record its error", a.Rung)
		}
	}
	last := r.Attempts[2]
	if last.Err != "" || last.SelfCheck != "pass" {
		t.Fatalf("winning rung = %+v, want passing self-check", last)
	}
	if err := circuitfold.VerifyFast(g, r.Result, 2); err != nil {
		t.Fatalf("resilient result failed re-verification: %v", err)
	}
	// The acceptance criterion: fallbacks are externally visible in the
	// metrics registry the caller supplied.
	if n := o.Metrics.Counter(obs.MFoldFallbacks).Value(); n != 2 {
		t.Fatalf("fold.fallbacks = %d, want 2", n)
	}
}

// TestResilientRecoversInjectedPanic arms an unconditional panic in the
// BDD allocator: the functional rung dies, the hybrid rung demotes its
// clusters to the structural fallback and still wins.
func TestResilientRecoversInjectedPanic(t *testing.T) {
	arm(t, map[string]fault.Rule{fault.PointBDDMk: {Mode: fault.Panic}})
	o := &circuitfold.Observer{Metrics: circuitfold.NewMetrics()}
	opt := circuitfold.ResilientOptions{}
	opt.Observer = o
	g := gen.Random(13, 16, 8, 500)
	r, err := circuitfold.RunResilient(g, 4, opt)
	if err != nil {
		t.Fatalf("ladder should have recovered: %v", err)
	}
	if r.Method == circuitfold.MethodFunctional {
		t.Fatal("functional rung cannot win with the BDD allocator panicking")
	}
	if r.Fallbacks < 1 {
		t.Fatalf("Fallbacks = %d, want >= 1", r.Fallbacks)
	}
	if r.PanicsRecovered < 1 {
		t.Fatalf("PanicsRecovered = %d, want >= 1", r.PanicsRecovered)
	}
	if n := o.Metrics.Counter(obs.MFoldPanics).Value(); n != r.PanicsRecovered {
		t.Fatalf("fold.panics_recovered = %d, want %d", n, r.PanicsRecovered)
	}
	if err := circuitfold.VerifyFast(g, r.Result, 2); err != nil {
		t.Fatalf("recovered result failed re-verification: %v", err)
	}
}

// TestResilientFrameWorkerFault arms a panic inside the parallel TFF
// frame worker: the functional rung dies as a contained ErrInternal
// failure and the ladder demotes — to hybrid, whose clusters (running
// the same refinement) each demote to the structural remainder, or all
// the way to the structural rung. Either way the pool drains, the fold
// verifies, and the process never crashes.
func TestResilientFrameWorkerFault(t *testing.T) {
	arm(t, map[string]fault.Rule{fault.PointTFFFrameWorker: {Mode: fault.Panic}})
	o := &circuitfold.Observer{Metrics: circuitfold.NewMetrics()}
	opt := circuitfold.ResilientOptions{}
	opt.Observer = o
	opt.Workers = 4
	g := gen.Random(19, 16, 8, 500)
	r, err := circuitfold.RunResilient(g, 4, opt)
	if err != nil {
		t.Fatalf("ladder should have recovered: %v", err)
	}
	if r.Method == circuitfold.MethodFunctional {
		t.Fatal("functional rung cannot win with every frame worker panicking")
	}
	if r.Fallbacks < 1 {
		t.Fatalf("Fallbacks = %d, want >= 1", r.Fallbacks)
	}
	if r.PanicsRecovered < 1 {
		t.Fatalf("PanicsRecovered = %d, want >= 1", r.PanicsRecovered)
	}
	if err := circuitfold.VerifyFast(g, r.Result, 2); err != nil {
		t.Fatalf("recovered result failed re-verification: %v", err)
	}
}

// TestResilientSATSelfCheck runs the escalated self-check on the
// paper's running example, where the SAT spot-check can finish.
func TestResilientSATSelfCheck(t *testing.T) {
	g := buildAdder3(t)
	opt := circuitfold.ResilientOptions{SelfCheckSAT: 100000}
	r, err := circuitfold.RunResilient(g, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Attempts[len(r.Attempts)-1].SelfCheck != "pass" {
		t.Fatal("self-check must pass on a correct fold")
	}
	if r.SelfCheckFails != 0 {
		t.Fatalf("SelfCheckFails = %d, want 0", r.SelfCheckFails)
	}
}

// TestResilientCancelAborts checks that cancellation is never
// retried: the ladder stops at the first canceled rung.
func TestResilientCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := circuitfold.ResilientOptions{}
	opt.Context = ctx
	r, err := circuitfold.RunResilient(bigCircuit(), 8, opt)
	if !errors.Is(err, circuitfold.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(r.Attempts) != 1 {
		t.Fatalf("canceled ladder attempted %d rungs, want 1", len(r.Attempts))
	}
}

// TestResilientRetryReorder checks the optional reorder rung is
// inserted right after the functional rung.
func TestResilientRetryReorder(t *testing.T) {
	opt := circuitfold.ResilientOptions{RetryReorder: true}
	opt.RungBudgets = map[circuitfold.FoldMethod]circuitfold.Budget{
		circuitfold.MethodFunctional:        {BDDNodes: 64},
		circuitfold.MethodFunctionalReorder: {BDDNodes: 64},
		circuitfold.MethodHybrid:            {Wall: time.Millisecond},
	}
	r, err := circuitfold.RunResilient(bigCircuit(), 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Attempts) < 3 {
		t.Fatalf("Attempts = %d, want >= 3", len(r.Attempts))
	}
	if got := circuitfold.FoldMethod(r.Attempts[1].Rung); got != circuitfold.MethodFunctionalReorder {
		t.Fatalf("second rung = %s, want functional-reorder", got)
	}
}

// TestResilientGoroutineHygiene folds under an armed fault and checks
// no worker goroutines outlive the call.
func TestResilientGoroutineHygiene(t *testing.T) {
	base := runtime.NumGoroutine()
	arm(t, map[string]fault.Rule{fault.PointSweepShard: {Mode: fault.Panic}})
	opt := circuitfold.ResilientOptions{}
	_, _ = circuitfold.RunResilient(gen.Random(17, 16, 8, 600), 4, opt)
	fault.Deactivate()
	checkNoGoroutineLeak(t, base)
}
