module circuitfold

go 1.22
