package circuitfold_test

import (
	"fmt"

	"circuitfold"
)

// Example folds a 2-bit equality comparator over two clock cycles: four
// input pins become two, and the fold is verified exhaustively against
// the original circuit.
func Example() {
	g := circuitfold.NewCircuit()
	a0 := g.PI("a0")
	b0 := g.PI("b0")
	a1 := g.PI("a1")
	b1 := g.PI("b1")
	g.AddPO(g.And(g.Xnor(a0, b0), g.Xnor(a1, b1)), "eq")

	r, err := circuitfold.Functional(g, 2, circuitfold.DefaultOptions())
	if err != nil {
		panic(err)
	}
	if err := circuitfold.Verify(g, r, 0); err != nil {
		panic(err)
	}
	fmt.Printf("pins: %d -> %d, flip-flops: %d, FSM states: %d\n",
		g.NumPIs(), r.InputPins(), r.FlipFlops(), r.States)

	// Execute one folded comparison: a = 2, b = 2.
	out := r.Execute([]bool{false, false, true, true})
	fmt.Printf("2 == 2: %v\n", out[0])
	// Output:
	// pins: 4 -> 2, flip-flops: 2, FSM states: 4
	// 2 == 2: true
}
