package circuitfold

// One benchmark per paper artifact (tables and figures), plus ablation
// benches for the design choices DESIGN.md calls out. The experiment
// harness in internal/exp produces the actual rows; these benches time
// the regeneration and report the headline numbers as custom metrics so
// `go test -bench=. -benchmem` doubles as the reproduction driver.
//
// The full-suite table benches (Table I, II, III) are heavy by nature;
// they run one regeneration per b.N iteration.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/core"
	"circuitfold/internal/exp"
	"circuitfold/internal/fsm"
	"circuitfold/internal/gen"
	"circuitfold/internal/lutmap"
	"circuitfold/internal/part"
	"circuitfold/internal/sat"
	"circuitfold/internal/tdm"
)

// BenchmarkTable1Stats regenerates Table I (benchmark statistics) over a
// representative subset per iteration; run cmd/experiments -table 1 for
// the full 27-row table.
func BenchmarkTable1Stats(b *testing.B) {
	names := []string{"64-adder", "apex2", "e64", "i10", "C7552"}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(names)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.FprintTable1(io.Discard, rows)
			b.ReportMetric(float64(rows[0].LUTs), "64-adder-LUTs")
		}
	}
}

// BenchmarkTable2Structural regenerates Table II: structural folding of
// every >200-pin benchmark except the two largest (hyp, memctrl), which
// cmd/experiments covers.
func BenchmarkTable2Structural(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum := 0.0
		n := 0
		for _, name := range exp.Table2Circuits {
			if name == "hyp" || name == "memctrl" {
				continue
			}
			g := gen.MustBuild(name)
			T := exp.MinFrames(g.NumPIs(), exp.PinLimit)
			r, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: core.Binary})
			if err != nil {
				b.Fatal(err)
			}
			if r.InputPins() > exp.PinLimit {
				b.Fatalf("%s: pin limit violated", name)
			}
			sum += float64(r.FlipFlops())
			n++
		}
		if i == 0 {
			b.ReportMetric(sum/float64(n), "avg-FFs")
		}
	}
}

// BenchmarkSimpleBaseline times the input-buffering baseline on the same
// circuits as BenchmarkTable2Structural (Section VI comparison).
func BenchmarkSimpleBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range exp.Table2Circuits {
			if name == "hyp" || name == "memctrl" {
				continue
			}
			g := gen.MustBuild(name)
			T := exp.MinFrames(g.NumPIs(), exp.PinLimit)
			if _, err := core.SimpleFold(g, T); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCaseStudyI10 regenerates the Section VI latency case study
// and asserts the 25% I/O-cycle reduction.
func BenchmarkCaseStudyI10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := exp.CaseStudyI10()
		if err != nil {
			b.Fatal(err)
		}
		if cs.UnfoldedCycles != 4 || cs.FoldedCycles != 3 {
			b.Fatalf("cycles %d -> %d, want 4 -> 3", cs.UnfoldedCycles, cs.FoldedCycles)
		}
		if i == 0 {
			b.ReportMetric(cs.Reduction*100, "reduction-%")
		}
	}
}

// BenchmarkTable3Functional regenerates Table III rows (structural vs
// functional) for the fast half of the suite; cmd/experiments -table 3
// runs all 33 entries.
func BenchmarkTable3Functional(b *testing.B) {
	opt := exp.DefaultTable3Options()
	for _, name := range []string{"64-adder", "e64", "i2", "i3", "arbiter"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := exp.Table3Entry(name, 16, opt)
				if err != nil {
					b.Fatal(err)
				}
				if !row.OK {
					b.Fatalf("%s T=16 functional fold did not complete", name)
				}
				if i == 0 {
					b.ReportMetric(row.LUTRed, "LUT-red-%")
					b.ReportMetric(row.FFRed, "FF-red-%")
				}
			}
		})
	}
}

// BenchmarkFigure7Scatter regenerates the Figure 7 size-scatter series
// for the fast circuits.
func BenchmarkFigure7Scatter(b *testing.B) {
	opt := exp.DefaultTable3Options()
	for i := 0; i < b.N; i++ {
		rows := make([]exp.Table3Row, 0, 2)
		for _, name := range []string{"e64", "i3"} {
			row, err := exp.Table3Entry(name, 8, opt)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row)
		}
		pts, err := exp.Figure7(rows)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.FprintFigure7(io.Discard, pts)
			b.ReportMetric(float64(len(pts)), "points")
		}
	}
}

// BenchmarkTDMModel times the Figure 1 TDM transmission model.
func BenchmarkTDMModel(b *testing.B) {
	l := tdm.Link{Pins: 200, Ratio: 4}
	for i := 0; i < b.N; i++ {
		if got := l.IOCyclesToTransmit(1600); got != 8 {
			b.Fatalf("cycles = %d", got)
		}
		_ = l.TransmitSchedule(1600)
	}
}

// --- ablation benches --------------------------------------------------

// BenchmarkAblationCounterEncoding compares the structural method's
// binary counter against the one-hot shift register (Section IV's two
// control options).
func BenchmarkAblationCounterEncoding(b *testing.B) {
	g := gen.MustBuild("i10")
	for _, enc := range []core.Encoding{core.Binary, core.OneHot} {
		b.Run(enc.String(), func(b *testing.B) {
			var ffs int
			for i := 0; i < b.N; i++ {
				r, err := core.StructuralFold(g, 4, core.StructuralOptions{Counter: enc})
				if err != nil {
					b.Fatal(err)
				}
				ffs = r.FlipFlops()
			}
			b.ReportMetric(float64(ffs), "FFs")
		})
	}
}

// BenchmarkAblationStateEncoding compares natural-binary and one-hot
// state encodings of the functional method (Section V-C).
func BenchmarkAblationStateEncoding(b *testing.B) {
	g := gen.MustBuild("e64")
	for _, enc := range []core.Encoding{core.Binary, core.OneHot} {
		b.Run(enc.String(), func(b *testing.B) {
			opt := core.DefaultFunctionalOptions()
			opt.StateEnc = enc
			var luts int
			for i := 0; i < b.N; i++ {
				r, err := core.FunctionalFold(g, 8, opt)
				if err != nil {
					b.Fatal(err)
				}
				luts, _ = lutmap.Count(r.Seq.G, 6)
			}
			b.ReportMetric(float64(luts), "LUTs")
		})
	}
}

// BenchmarkAblationReorder compares functional folding with and without
// the BDD symmetric-sifting input reordering (Algorithm 2, line 4).
func BenchmarkAblationReorder(b *testing.B) {
	g := gen.MustBuild("i2")
	for _, reorder := range []bool{false, true} {
		name := "nr"
		if reorder {
			name = "r"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultFunctionalOptions()
			opt.Reorder = reorder
			opt.Minimize = false
			var states int
			for i := 0; i < b.N; i++ {
				r, err := core.FunctionalFold(g, 8, opt)
				if err != nil {
					b.Fatal(err)
				}
				states = r.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkAblationMinimize compares functional folding with and without
// MeMin state minimization (m/nm of Table III).
func BenchmarkAblationMinimize(b *testing.B) {
	g := gen.MustBuild("64-adder")
	for _, min := range []bool{false, true} {
		name := "nm"
		if min {
			name = "m"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultFunctionalOptions()
			opt.Minimize = min
			opt.StateEnc = core.Binary
			var ffs int
			for i := 0; i < b.N; i++ {
				r, err := core.FunctionalFold(g, 16, opt)
				if err != nil {
					b.Fatal(err)
				}
				ffs = r.FlipFlops()
			}
			b.ReportMetric(float64(ffs), "FFs")
		})
	}
}

// --- substrate micro-benches --------------------------------------------

// BenchmarkStructuralFold measures raw structural folding throughput on
// a mid-size circuit (the paper reports sub-second runtimes).
func BenchmarkStructuralFold(b *testing.B) {
	g := gen.MustBuild("b14_C")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.StructuralFold(g, 2, core.StructuralOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalFold measures the full functional pipeline on the
// adder3 running example.
func BenchmarkFunctionalFold(b *testing.B) {
	g := gen.MustBuild("adder3")
	opt := core.DefaultFunctionalOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FunctionalFold(g, 3, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFoldParallel folds the paper's 64-adder functionally at
// T=16 with four frame workers — the parallel time-frame-folding path
// end to end (schedule, worker-arena clones, concurrent refinement,
// deterministic merge). Run under -race (make bench-fold-smoke) this is
// the PR gate that the parallel fold stays race-clean; the states
// check pins the folded machine to the known 64-adder result, which is
// bit-identical for every worker count.
func BenchmarkFoldParallel(b *testing.B) {
	g := gen.MustBuild("64-adder")
	for i := 0; i < b.N; i++ {
		sched, err := core.PinSchedule(g, 16, core.ScheduleOptions{Reorder: true})
		if err != nil {
			b.Fatal(err)
		}
		_, states, err := core.TimeFrameFold(g, sched, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		if states != 32 {
			b.Fatalf("64-adder T=16 folded to %d states, want 32", states)
		}
	}
}

// BenchmarkLUTMapping measures the 6-LUT mapper on a Table I circuit.
func BenchmarkLUTMapping(b *testing.B) {
	g := gen.MustBuild("b15_C")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := lutmap.Map(g, lutmap.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if m.LUTs == 0 {
			b.Fatal("empty mapping")
		}
	}
}

// BenchmarkUnrollEquivalence measures the verification path: fold, unroll
// by T, simulate against the original.
func BenchmarkUnrollEquivalence(b *testing.B) {
	g := gen.MustBuild("64-adder")
	r, err := core.StructuralFold(g, 4, core.StructuralOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := r.Seq.Unroll(r.T)
		if u.NumPOs() != r.T*r.Seq.NumOutputs() {
			b.Fatal("unroll shape wrong")
		}
	}
}

// BenchmarkHybridFold times the combined method (the paper's future
// work) on i3, whose six disjoint output cones cluster ideally.
func BenchmarkHybridFold(b *testing.B) {
	g := gen.MustBuild("i3")
	opt := core.DefaultHybridOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.HybridFold(g, 4, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.FlipFlops()), "FFs")
		}
	}
}

// BenchmarkFMPartition times the multi-FPGA bipartitioner from the
// introduction's motivating scenario.
func BenchmarkFMPartition(b *testing.B) {
	g := gen.MustBuild("b14_C")
	h, _ := part.FromAIG(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := part.FM(h, part.Options{Seed: int64(i)})
		if bp.Cut <= 0 {
			b.Fatal("no cut")
		}
		if i == 0 {
			b.ReportMetric(float64(bp.Cut), "cut-nets")
		}
	}
}

// BenchmarkBDDSifting times the reordering engine on an interleaving-
// sensitive function (the workload behind Algorithm 2).
func BenchmarkBDDSifting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bdd.New(16)
		f := bdd.True
		for j := 0; j < 8; j++ {
			f = m.And(f, m.Xnor(m.Var(j), m.Var(8+j)))
		}
		before := m.NodeCount(f)
		after := m.Sift([]bdd.Node{f}, 0, 15)
		if after >= before {
			b.Fatalf("sift did not reduce: %d -> %d", before, after)
		}
	}
}

// BenchmarkSATSolver times the CDCL solver on a hard-but-feasible
// pigeonhole instance.
func BenchmarkSATSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		n := 7
		p := make([][]int, n+1)
		for j := range p {
			p[j] = make([]int, n)
			for k := range p[j] {
				p[j][k] = s.NewVar()
			}
		}
		for j := 0; j <= n; j++ {
			cl := make([]sat.Lit, n)
			for k := 0; k < n; k++ {
				cl[k] = sat.MkLit(p[j][k], false)
			}
			s.AddClause(cl...)
		}
		for k := 0; k < n; k++ {
			for a := 0; a <= n; a++ {
				for c := a + 1; c <= n; c++ {
					s.AddClause(sat.MkLit(p[a][k], true), sat.MkLit(p[c][k], true))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP should be UNSAT")
		}
	}
}

// BenchmarkMeMin times exact state minimization on a KISS-style machine.
func BenchmarkMeMin(b *testing.B) {
	g := gen.MustBuild("adder3")
	sched, err := core.PinSchedule(g, 3, core.ScheduleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	machine, _, err := core.TimeFrameFold(g, sched, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm, err := fsm.Minimize(machine, fsm.DefaultMinimizeOptions())
		if err != nil {
			b.Fatal(err)
		}
		if mm.NumStates() != 2 {
			b.Fatalf("states = %d", mm.NumStates())
		}
	}
}

// --- sweeping engine benches --------------------------------------------

// sweepBenchGraph is the shared workload of the BenchmarkSweep* family: a
// mid-size random circuit with enough internal sharing for the sweep to
// find real merges.
func sweepBenchGraph() *Circuit {
	return gen.Random(1234, 48, 16, 4000)
}

// BenchmarkSweepWorkers measures the parallel counterexample-guided sweep
// at 1 worker and at GOMAXPROCS workers. The swept result is identical in
// both configurations; on a single-CPU host the two variants necessarily
// time alike (see EXPERIMENTS.md).
func BenchmarkSweepWorkers(b *testing.B) {
	g := sweepBenchGraph()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		opt := aig.DefaultSweepOptions()
		opt.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var st *aig.SweepStats
			for i := 0; i < b.N; i++ {
				_, st = g.SweepWithStats(opt)
			}
			b.ReportMetric(float64(st.SATCalls), "sat-calls")
			b.ReportMetric(float64(st.Merges), "merges")
		})
	}
}

// BenchmarkSweepCEX measures the counterexample-refinement loop against
// the no-refinement baseline on a narrow one-word pattern pool, where
// simulation aliasing makes refinement matter most.
func BenchmarkSweepCEX(b *testing.B) {
	g := sweepBenchGraph()
	for _, cex := range []int{0, 8} {
		opt := aig.DefaultSweepOptions()
		opt.Words = 1
		opt.MaxCEXRounds = cex
		b.Run(fmt.Sprintf("cexRounds=%d", cex), func(b *testing.B) {
			var st *aig.SweepStats
			for i := 0; i < b.N; i++ {
				_, st = g.SweepWithStats(opt)
			}
			b.ReportMetric(float64(st.SATCalls), "sat-calls")
			b.ReportMetric(float64(st.CEXPatterns), "cex-patterns")
			b.ReportMetric(float64(st.Merges), "merges")
		})
	}
}

// BenchmarkSimWordsW measures the levelized multi-word simulation kernel
// in vector throughput (64*W assignments per graph pass).
func BenchmarkSimWordsW(b *testing.B) {
	g := sweepBenchGraph()
	const W = 8
	rng := rand.New(rand.NewSource(5))
	in := make([][]uint64, g.NumPIs())
	for i := range in {
		in[i] = make([]uint64, W)
		for w := range in[i] {
			in[i][w] = rng.Uint64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SimWordsW(in, W)
	}
	vecsPerOp := float64(64 * W)
	b.ReportMetric(vecsPerOp*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
}
